"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list`` — the available setups, cipher suites and workloads,
- ``info`` — the active calibration constants,
- ``run`` — one workload on one setup at one RTT, with per-phase output;
  ``--clients N`` scales it out to an N-client concurrent fleet
  (per-client sessions, caches, and DRBG streams; one contended server),
- ``figure`` — regenerate one of the paper's figures as a text table,
- ``sweep`` — a workload across a list of RTTs for two setups
  (Figure-8-style series for any workload),
- ``stats`` — run with telemetry and print the cross-layer metrics
  registry snapshot (``--json`` for machine-readable output),
- ``trace`` — run with span tracing and write a Chrome-trace JSON file
  loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing,
- ``profile`` — run with full profiling (telemetry + tracing + resource
  occupancy recording) and print the bottleneck-attribution report:
  CPU busy/crypto percentages per host, link occupancy, lock waits,
  RPC queue depth, and the virtual-time critical path.  ``--clients N``
  profiles an N-client fleet; ``--flame FILE`` writes a collapsed-stack
  flame graph (flamegraph.pl / speedscope compatible); ``--json FILE``
  writes the full report as JSON,
- ``bench-diff`` — compare two stats/perf JSON snapshots (e.g. a fresh
  ``BENCH_PERF.json`` against the committed one) and report per-metric
  regression verdicts; exits non-zero only if something regressed.

``stats``, ``trace`` and ``profile`` accept either a bare setup name
(``sgfs``) or a
preset: an optional ``lan-``/``wan-`` prefix (LAN = 0 RTT, WAN = 40 ms)
and an optional ``-cache`` suffix enabling the proxy disk cache, e.g.
``wan-sgfs-cache`` or ``lan-nfs`` (``nfs`` aliases ``nfs-v3``).

Everything prints virtual-time seconds from the deterministic simulation.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.calibration import DEFAULT_CALIBRATION
from repro.core.setups import SETUP_BUILDERS
from repro.crypto.suites import SUITES
from repro.faults import FAULT_PRESETS
from repro.harness import (
    run_iozone,
    run_iozone_wr,
    run_mab,
    run_postmark,
    run_seismic,
)
from repro.harness.presets import WAN_RTT, resolve_preset  # noqa: F401 (re-export)

WORKLOAD_RUNNERS = {
    "iozone": run_iozone,
    "iozone-wr": run_iozone_wr,
    "postmark": run_postmark,
    "mab": run_mab,
    "seismic": run_seismic,
}

FIGURES = ("fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10")


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SGFS (SC'07) reproduction — run simulated experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list setups, suites, workloads, figures")
    sub.add_parser("info", help="show the calibration constants")

    run_p = sub.add_parser("run", help="run one workload on one setup")
    run_p.add_argument("--workload",
                       choices=sorted([*WORKLOAD_RUNNERS, "churn"]),
                       required=True,
                       help="benchmark to run; 'churn' (long-lived "
                            "light-I/O sessions) requires --clients >= 2")
    run_p.add_argument("--setup", choices=sorted(SETUP_BUILDERS), required=True)
    run_p.add_argument("--rtt-ms", type=float, default=0.0,
                       help="emulated WAN round-trip time (default: LAN)")
    run_p.add_argument("--disk-cache", action="store_true",
                       help="enable the proxy disk cache (proxied setups)")
    run_p.add_argument("--cpu", action="store_true",
                       help="also print proxy/daemon CPU utilization")
    run_p.add_argument("--faults", choices=sorted(FAULT_PRESETS), default=None,
                       help="run under a deterministic adversarial network "
                            "(packet loss, duplication, flaps, crashes)")
    run_p.add_argument("--fault-seed", default="faults",
                       help="seed for the fault schedule; same seed => "
                            "identical drop schedule (default: 'faults')")
    run_p.add_argument("--clients", type=int, default=1,
                       help="fleet size: run N concurrent clients against "
                            "one server (default: 1 = classic single run)")
    run_p.add_argument("--stagger-ms", type=float, default=0.0,
                       help="virtual milliseconds between fleet client "
                            "starts (default: 0 = synchronized)")
    run_p.add_argument("--server-cores", type=int, default=1,
                       help="server CPU cores for fleet runs; distinct "
                            "sessions pin to distinct cores (default: 1)")
    run_p.add_argument("--session-tickets", action="store_true",
                       help="enable TLS session tickets so reconnecting "
                            "fleet clients use abbreviated handshakes")
    run_p.add_argument("--reconnect-ms", type=float, default=None,
                       help="cycle each fleet client's upstream session "
                            "every N virtual milliseconds (exercises "
                            "resumption)")
    run_p.add_argument("--delegation-ms", type=float, default=None,
                       help="SSO mode: fleet clients authenticate with "
                            "short-lived limited proxy credentials valid N "
                            "virtual milliseconds; expiry forces "
                            "re-delegation on the next reconnect (secure "
                            "sgfs* setups only)")
    run_p.add_argument("--batch-records", type=int, default=1,
                       help="coalesce up to N queued server replies per "
                            "session into one sealing pass (default: 1)")
    run_p.add_argument("--servers", type=int, default=1,
                       help="shard the data plane across N backend NFS "
                            "servers; grid-created files stripe their "
                            "blocks round-robin (default: 1 = unsharded)")
    run_p.add_argument("--replicas", type=int, default=1,
                       help="write each grid block to N consecutive "
                            "backends so reads survive a backend crash "
                            "(default: 1 = no replication)")
    run_p.add_argument("--streams", type=int, default=1,
                       help="parallel proxy-to-proxy sub-channels per "
                            "upstream leg; bulk block traffic round-robins "
                            "across them (default: 1 = single channel)")
    run_p.add_argument("--pipeline-depth", type=int, default=None,
                       help="cap on the RTT-sized read-ahead/write-behind "
                            "window of in-flight blocks (default: engine "
                            "default when --streams > 1, else off)")
    run_p.add_argument("--stats-json", default=None, metavar="FILE",
                       help="write the cross-layer metrics snapshot to "
                            "FILE as JSON")

    fig_p = sub.add_parser("figure", help="regenerate a figure of the paper")
    fig_p.add_argument("name", choices=FIGURES)

    sweep_p = sub.add_parser("sweep", help="one workload across RTTs, two setups")
    sweep_p.add_argument("--workload", choices=sorted(WORKLOAD_RUNNERS),
                         default="postmark")
    sweep_p.add_argument("--baseline", choices=sorted(SETUP_BUILDERS),
                         default="nfs-v3")
    sweep_p.add_argument("--setup", choices=sorted(SETUP_BUILDERS), default="sgfs")
    sweep_p.add_argument("--rtts-ms", default="5,10,20,40,80",
                         help="comma-separated RTT list in milliseconds")

    stats_p = sub.add_parser(
        "stats",
        help="run with telemetry and print the metrics-registry snapshot",
    )
    stats_p.add_argument("setup",
                         help="setup or preset, e.g. sgfs, lan-nfs, "
                              "wan-sgfs-cache")
    stats_p.add_argument("workload", choices=sorted(WORKLOAD_RUNNERS))
    stats_p.add_argument("--rtt-ms", type=float, default=None,
                         help="override the preset's RTT (milliseconds)")
    stats_p.add_argument("--json", action="store_true",
                         help="emit the snapshot as JSON (machine-readable)")

    trace_p = sub.add_parser(
        "trace",
        help="run with span tracing and write Chrome-trace JSON "
             "(load in Perfetto or chrome://tracing)",
    )
    trace_p.add_argument("setup",
                         help="setup or preset, e.g. sgfs, lan-nfs, "
                              "wan-sgfs-cache")
    trace_p.add_argument("workload", choices=sorted(WORKLOAD_RUNNERS))
    trace_p.add_argument("--rtt-ms", type=float, default=None,
                         help="override the preset's RTT (milliseconds)")
    trace_p.add_argument("--out", default="trace.json",
                         help="output file (default: trace.json)")

    prof_p = sub.add_parser(
        "profile",
        help="run with full profiling and print the bottleneck-"
             "attribution report (virtual-time critical path, CPU/link/"
             "lock/queue utilization)",
    )
    prof_p.add_argument("setup",
                        help="setup or preset, e.g. sgfs-aes, lan-nfs, "
                             "wan-sgfs-cache")
    prof_p.add_argument("workload", choices=sorted(WORKLOAD_RUNNERS))
    prof_p.add_argument("--rtt-ms", type=float, default=None,
                        help="override the preset's RTT (milliseconds)")
    prof_p.add_argument("--clients", type=int, default=1,
                        help="profile an N-client concurrent fleet "
                             "(default: 1 = single session)")
    prof_p.add_argument("--server-cores", type=int, default=1,
                        help="server CPU cores for fleet profiles; the "
                             "report gains per-core utilization rows "
                             "(default: 1)")
    prof_p.add_argument("--file-size", type=int, default=None,
                        help="iozone file size in bytes (default: the "
                             "workload's own default)")
    prof_p.add_argument("--window", type=float, default=None,
                        help="utilization-timeline bucket width in virtual "
                             "seconds (default: makespan/20)")
    prof_p.add_argument("--top", type=int, default=10,
                        help="rows per ranked report section (default: 10)")
    prof_p.add_argument("--flame", default=None, metavar="FILE",
                        help="write a collapsed-stack flame graph "
                             "(flamegraph.pl / speedscope 'collapsed' input)")
    prof_p.add_argument("--json", dest="json_out", default=None, metavar="FILE",
                        help="write the full attribution report to FILE as "
                             "JSON (deterministic: same seed => same bytes)")

    bd_p = sub.add_parser(
        "bench-diff",
        help="compare two stats/perf JSON snapshots; exit non-zero on "
             "regression",
    )
    bd_p.add_argument("baseline", help="baseline JSON file")
    bd_p.add_argument("current", help="current JSON file to judge")
    bd_p.add_argument("--tolerance", type=float, default=0.05,
                      help="relative change treated as noise "
                           "(default: 0.05 = 5%%)")
    bd_p.add_argument("--only", action="append", default=[], metavar="GLOB",
                      help="compare only dotted paths matching GLOB "
                           "(repeatable)")
    bd_p.add_argument("--ignore", action="append", default=[], metavar="GLOB",
                      help="skip dotted paths matching GLOB (repeatable)")
    bd_p.add_argument("--json", action="store_true",
                      help="emit the diff as JSON")
    bd_p.add_argument("--show-ok", action="store_true",
                      help="also list metrics within tolerance")
    return parser


# -- commands -----------------------------------------------------------------


def _cmd_list(out) -> int:
    print("setups: ", ", ".join(sorted(SETUP_BUILDERS)), file=out)
    print("suites: ", ", ".join(sorted(SUITES)), file=out)
    print("workloads: ", ", ".join(sorted([*WORKLOAD_RUNNERS, "churn"])), file=out)
    print("figures: ", ", ".join(FIGURES), file=out)
    print("fault presets: ", ", ".join(sorted(FAULT_PRESETS)), file=out)
    return 0


def _cmd_info(out) -> int:
    cal = DEFAULT_CALIBRATION
    print("calibration (see repro/core/calibration.py):", file=out)
    for name in (
        "cpu_hz", "lan_link_latency", "lan_bandwidth", "client_cache_bytes",
        "block_size", "read_ahead_blocks", "server_disk_access",
        "cache_disk_access",
    ):
        print(f"  {name:20s} = {getattr(cal, name)}", file=out)
    print(f"  kernel_client_cost   = {cal.kernel_client_cost}", file=out)
    print(f"  kernel_server_cost   = {cal.kernel_server_cost}", file=out)
    print(f"  proxy_cost           = {cal.proxy_cost}", file=out)
    return 0


def _write_stats_json(path: str, stats: dict, out) -> int:
    try:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(stats, fh, sort_keys=True, indent=2)
    except OSError as exc:
        print(f"error: cannot write {path}: {exc}", file=out)
        return 2
    print(f"wrote {path}", file=out)
    return 0


def _cmd_run_fleet(args, kwargs, out) -> int:
    """The ``run --clients N`` path: one N-client concurrent fleet."""
    from repro.harness import run_fleet
    from repro.workloads.churn import SessionChurn
    from repro.workloads.iozone import IOzoneReadReread, IOzoneWriteRead
    from repro.workloads.mab import ModifiedAndrewBenchmark
    from repro.workloads.postmark import PostMark
    from repro.workloads.seismic import Seismic

    factories = {
        "iozone": lambda: IOzoneReadReread(),
        "iozone-wr": lambda: IOzoneWriteRead(),
        "postmark": lambda: PostMark(None),
        "mab": ModifiedAndrewBenchmark,
        "seismic": lambda: Seismic(None),
        "churn": lambda: SessionChurn(),
    }
    try:
        result = run_fleet(
            args.setup, factories[args.workload], clients=args.clients,
            rtt=args.rtt_ms / 1000.0, stagger=args.stagger_ms / 1000.0,
            setup_kwargs=kwargs or None,
            faults=args.faults, fault_seed=args.fault_seed,
            server_cores=args.server_cores,
            session_tickets=args.session_tickets,
            reconnect_interval=(args.reconnect_ms / 1000.0
                                if args.reconnect_ms else None),
            batch_records=args.batch_records,
            servers=args.servers,
            replicas=args.replicas,
            streams=args.streams,
            pipeline_depth=args.pipeline_depth,
            delegation_lifetime=(args.delegation_ms / 1000.0
                                 if args.delegation_ms else None),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    rtt_label = "LAN" if args.rtt_ms == 0 else f"{args.rtt_ms:g}ms RTT"
    print(f"{args.workload} on {args.setup} ({rtt_label}), "
          f"{args.clients}-client fleet", file=out)
    print(f"  {'makespan':12s} {result.makespan:10.3f}s", file=out)
    print(f"  {'mean/client':12s} {result.mean_client_seconds:10.3f}s", file=out)
    for c in result.per_client:
        print(f"  {c.name:12s} {c.total:10.3f}s "
              f"(start {c.start:.3f}s)", file=out)
    if args.faults:
        fstats = result.stats.get("faults", {})
        shown = {k: v for k, v in fstats.items() if v}
        print(f"  faults[{args.faults}]: "
              + (", ".join(f"{k}={v}" for k, v in sorted(shown.items()))
                 or "no packets perturbed"), file=out)
    if args.stats_json:
        return _write_stats_json(args.stats_json, result.stats, out)
    return 0


def _cmd_run(args, out) -> int:
    kwargs = {}
    if args.disk_cache:
        if args.setup in ("nfs-v3", "nfs-v4"):
            print("error: --disk-cache applies only to proxied setups", file=out)
            return 2
        kwargs["disk_cache"] = True
    if args.streams > 1 or args.pipeline_depth is not None:
        if args.setup in ("nfs-v3", "nfs-v4", "gfs-ssh", "sfs"):
            print("error: --streams/--pipeline-depth apply only to "
                  "proxied gfs/sgfs setups", file=out)
            return 2
    if args.clients < 1:
        print("error: --clients must be >= 1", file=out)
        return 2
    if args.clients > 1:
        return _cmd_run_fleet(args, kwargs, out)
    if args.workload == "churn":
        print("error: the churn workload requires a fleet run "
              "(--clients >= 2)", file=out)
        return 2
    for flag, active in (
        ("--server-cores", args.server_cores > 1),
        ("--session-tickets", args.session_tickets),
        ("--reconnect-ms", args.reconnect_ms is not None),
        ("--batch-records", args.batch_records > 1),
        ("--servers", args.servers > 1),
        ("--replicas", args.replicas > 1),
        ("--delegation-ms", args.delegation_ms is not None),
    ):
        if active:
            print(f"error: {flag} requires a fleet run (--clients >= 2)",
                  file=out)
            return 2
    if args.streams > 1:
        kwargs["streams"] = args.streams
    if args.pipeline_depth is not None:
        kwargs["pipeline_depth"] = args.pipeline_depth
    runner = WORKLOAD_RUNNERS[args.workload]
    result = runner(args.setup, rtt=args.rtt_ms / 1000.0, setup_kwargs=kwargs or None,
                    faults=args.faults, fault_seed=args.fault_seed)
    rtt_label = "LAN" if args.rtt_ms == 0 else f"{args.rtt_ms:g}ms RTT"
    print(f"{args.workload} on {args.setup} ({rtt_label})", file=out)
    if args.faults:
        fstats = result.stats.get("faults", {})
        shown = {k: v for k, v in fstats.items() if v}
        print(f"  faults[{args.faults}]: "
              + (", ".join(f"{k}={v}" for k, v in sorted(shown.items()))
                 or "no packets perturbed"), file=out)
    for phase, seconds in result.phases.items():
        print(f"  {phase:12s} {seconds:10.3f}s", file=out)
    if result.writeback_seconds:
        print(f"  {'write-back':12s} {result.writeback_seconds:10.3f}s "
              f"({result.writeback_bytes} bytes)", file=out)
    if args.cpu:
        for side in ("client", "server"):
            for account in ("proxy", "sfsd", "sfssd", "ssh", "sshd"):
                pct = result.cpu_mean(side, account)
                if pct > 0:
                    print(f"  cpu[{side}:{account}] = {pct:.1f}%", file=out)
    if args.stats_json:
        return _write_stats_json(args.stats_json, result.stats, out)
    return 0


def _cmd_figure(name: str, out) -> int:
    MB = 1024 * 1024
    iozone_kw = dict(file_size=4 * MB, setup_kwargs={"cache_bytes": 2 * MB})
    if name == "fig4":
        print("Figure 4: IOzone runtime, LAN", file=out)
        for setup in ("nfs-v3", "nfs-v4", "sfs", "gfs", "sgfs-sha",
                      "sgfs-rc", "sgfs-aes", "gfs-ssh"):
            r = run_iozone(setup, rtt=0.0, **iozone_kw)
            print(f"  {setup:10s} {r.total:8.3f}s", file=out)
    elif name in ("fig5", "fig6"):
        side = "client" if name == "fig5" else "server"
        print(f"Figure {name[-1]}: IOzone {side}-side user-level CPU", file=out)
        for setup in ("gfs", "sgfs-sha", "sgfs-rc", "sgfs-aes", "sfs"):
            r = run_iozone(setup, rtt=0.0, **iozone_kw)
            account = ("sfsd" if side == "client" else "sfssd") if setup == "sfs" else "proxy"
            print(f"  {setup:10s} {r.cpu_mean(side, account):6.1f}%", file=out)
    elif name == "fig7":
        print("Figure 7: PostMark phases, LAN", file=out)
        for setup in ("nfs-v3", "nfs-v4", "sfs", "sgfs", "gfs-ssh"):
            r = run_postmark(setup, rtt=0.0)
            ph = r.phases
            print(f"  {setup:10s} creation={ph['creation']:7.2f}s "
                  f"transaction={ph['transaction']:7.2f}s "
                  f"deletion={ph['deletion']:6.2f}s", file=out)
    elif name == "fig8":
        print("Figure 8: PostMark total vs RTT", file=out)
        for rtt_ms in (5, 10, 20, 40, 80):
            n = run_postmark("nfs-v3", rtt=rtt_ms / 1000.0)
            s = run_postmark("sgfs", rtt=rtt_ms / 1000.0,
                             setup_kwargs={"disk_cache": True})
            print(f"  {rtt_ms:3d}ms  nfs-v3={n.total:8.1f}s  sgfs={s.total:8.1f}s "
                  f"({n.total / s.total:.2f}x)", file=out)
    elif name == "fig9":
        print("Figure 9: MAB phases, LAN + 40ms WAN", file=out)
        for setup, rtt, kw in (
            ("nfs-v3", 0.0, None), ("sgfs", 0.0, None),
            ("nfs-v3", 0.040, None), ("sgfs", 0.040, {"disk_cache": True}),
        ):
            r = run_mab(setup, rtt=rtt, setup_kwargs=kw)
            env = "LAN" if rtt == 0 else "WAN"
            ph = r.phases
            print(f"  {setup:7s} {env}  copy={ph['copy']:7.1f} stat={ph['stat']:6.1f} "
                  f"search={ph['search']:6.1f} compile={ph['compile']:8.1f} "
                  f"wb={r.writeback_seconds:5.1f}", file=out)
    elif name == "fig10":
        print("Figure 10: Seismic phases, LAN + 40ms WAN", file=out)
        for setup, rtt, kw in (
            ("nfs-v3", 0.0, None), ("sgfs", 0.0, None),
            ("nfs-v3", 0.040, None), ("sgfs", 0.040, {"disk_cache": True}),
        ):
            r = run_seismic(setup, rtt=rtt, setup_kwargs=kw)
            env = "LAN" if rtt == 0 else "WAN"
            ph = r.phases
            print(f"  {setup:7s} {env}  p1={ph['phase1']:6.1f} p2={ph['phase2']:7.1f} "
                  f"p3={ph['phase3']:5.1f} p4={ph['phase4']:6.1f} "
                  f"wb={r.writeback_seconds:5.1f}", file=out)
    return 0


def _cmd_sweep(args, out) -> int:
    runner = WORKLOAD_RUNNERS[args.workload]
    try:
        rtts = [float(x) for x in args.rtts_ms.split(",") if x.strip()]
    except ValueError:
        print(f"error: bad RTT list {args.rtts_ms!r}", file=out)
        return 2
    print(f"{args.workload}: {args.baseline} vs {args.setup}", file=out)
    for rtt_ms in rtts:
        rtt = rtt_ms / 1000.0
        base = runner(args.baseline, rtt=rtt)
        kw = {"disk_cache": True} if args.setup not in ("nfs-v3", "nfs-v4") else None
        other = runner(args.setup, rtt=rtt, setup_kwargs=kw)
        print(f"  {rtt_ms:6.1f}ms  {base.total:10.2f}s  {other.total:10.2f}s  "
              f"{base.total / other.total:6.2f}x", file=out)
    return 0


def _run_preset(args, out, tracing: bool):
    """Resolve the preset + run the workload; returns result or None."""
    try:
        setup, rtt, setup_kwargs = resolve_preset(args.setup)
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return None
    if args.rtt_ms is not None:
        rtt = args.rtt_ms / 1000.0
    runner = WORKLOAD_RUNNERS[args.workload]
    return runner(setup, rtt=rtt, setup_kwargs=setup_kwargs,
                  telemetry=True, tracing=tracing)


def _cmd_stats(args, out) -> int:
    result = _run_preset(args, out, tracing=False)
    if result is None:
        return 2
    if args.json:
        print(json.dumps(result.stats, sort_keys=True, indent=2), file=out)
        return 0
    print(f"{args.workload} on {args.setup}: "
          f"total={result.total:.3f}s virtual", file=out)
    for component in sorted(k for k in result.stats
                            if isinstance(result.stats[k], dict)):
        print(f"  [{component}]", file=out)
        for metric, value in sorted(result.stats[component].items()):
            if isinstance(value, dict):
                inner = ", ".join(f"{k}={v:g}" if isinstance(v, float)
                                  else f"{k}={v}"
                                  for k, v in sorted(value.items()))
                print(f"    {metric:28s} {inner}", file=out)
            elif isinstance(value, float):
                print(f"    {metric:28s} {value:g}", file=out)
            else:
                print(f"    {metric:28s} {value}", file=out)
    return 0


def _cmd_trace(args, out) -> int:
    # Open the output first: a bad path should fail before the run,
    # not after minutes of simulation.
    try:
        fh = open(args.out, "w", encoding="utf-8")
    except OSError as exc:
        print(f"error: cannot write {args.out}: {exc}", file=out)
        return 2
    with fh:
        result = _run_preset(args, out, tracing=True)
        if result is None:
            return 2
        fh.write(result.trace_json(indent=None))
    spans = len(result.tracer.spans)
    cats = ", ".join(sorted(result.tracer.categories()))
    print(f"wrote {args.out}: {spans} spans across [{cats}] "
          f"({result.total:.3f}s virtual)", file=out)
    print("open in https://ui.perfetto.dev or chrome://tracing", file=out)
    return 0


def _cmd_profile(args, out) -> int:
    from repro.obs.profile import collapsed_stacks, format_report, report_json

    try:
        setup, rtt, setup_kwargs = resolve_preset(args.setup)
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    if args.rtt_ms is not None:
        rtt = args.rtt_ms / 1000.0
    profile_opts = {"top": args.top}
    if args.window is not None:
        profile_opts["window"] = args.window

    if args.clients > 1:
        from repro.harness import run_fleet
        from repro.workloads.iozone import IOzoneReadReread
        from repro.workloads.mab import ModifiedAndrewBenchmark
        from repro.workloads.postmark import PostMark
        from repro.workloads.seismic import Seismic

        iozone_kw = {}
        if args.file_size is not None:
            iozone_kw["file_size"] = args.file_size
        factories = {
            "iozone": lambda: IOzoneReadReread(**iozone_kw),
            "postmark": lambda: PostMark(None),
            "mab": ModifiedAndrewBenchmark,
            "seismic": lambda: Seismic(None),
        }
        try:
            result = run_fleet(
                setup, factories[args.workload], clients=args.clients,
                rtt=rtt, setup_kwargs=setup_kwargs, profile=profile_opts,
                server_cores=args.server_cores,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2
    else:
        if args.server_cores > 1:
            print("error: --server-cores requires a fleet profile "
                  "(--clients >= 2)", file=out)
            return 2
        runner = WORKLOAD_RUNNERS[args.workload]
        run_kw = {}
        if args.workload == "iozone" and args.file_size is not None:
            run_kw["file_size"] = args.file_size
        result = runner(setup, rtt=rtt, setup_kwargs=setup_kwargs,
                        profile=profile_opts, **run_kw)

    report = result.profile
    print(format_report(report), file=out)
    if args.flame:
        try:
            with open(args.flame, "w", encoding="utf-8") as fh:
                fh.write(collapsed_stacks(result.tracer))
        except OSError as exc:
            print(f"error: cannot write {args.flame}: {exc}", file=out)
            return 2
        print(f"wrote {args.flame} (collapsed stacks; feed to flamegraph.pl "
              f"or speedscope)", file=out)
    if args.json_out:
        try:
            with open(args.json_out, "w", encoding="utf-8") as fh:
                fh.write(report_json(report))
                fh.write("\n")
        except OSError as exc:
            print(f"error: cannot write {args.json_out}: {exc}", file=out)
            return 2
        print(f"wrote {args.json_out}", file=out)
    return 0


def _cmd_bench_diff(args, out) -> int:
    from repro.obs.benchdiff import (
        bench_diff, diff_json, format_diff, has_regression,
    )

    docs = []
    for path in (args.baseline, args.current):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                docs.append(json.load(fh))
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {path}: {exc}", file=out)
            return 2
    entries = bench_diff(docs[0], docs[1], tolerance=args.tolerance,
                         only=args.only, ignore=args.ignore)
    if args.json:
        print(json.dumps(diff_json(entries), indent=2), file=out)
    else:
        print(format_diff(entries, show_ok=args.show_ok), file=out)
    return 1 if has_regression(entries) else 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = _parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(out)
    if args.command == "info":
        return _cmd_info(out)
    if args.command == "run":
        return _cmd_run(args, out)
    if args.command == "figure":
        return _cmd_figure(args.name, out)
    if args.command == "sweep":
        return _cmd_sweep(args, out)
    if args.command == "stats":
        return _cmd_stats(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    if args.command == "profile":
        return _cmd_profile(args, out)
    if args.command == "bench-diff":
        return _cmd_bench_diff(args, out)
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
