"""SFS: the Self-certifying File System baseline (Mazières et al., §2.2/§6).

The related user-level secure file system the paper compares against.
Three properties matter to the evaluation and are modeled faithfully:

- **self-certifying pathnames** ``/sfs/@server,HostID/...``: the HostID
  embeds a hash of the server's public key, so the client authenticates
  the server with no CA or other trust infrastructure
  (:mod:`repro.sfs.paths`),
- a secure channel approximating RC4 + SHA1-HMAC, with client (user)
  authentication by registered public key (:mod:`repro.sfs.channel`),
- **asynchronous RPCs** and aggressive in-memory caching of attributes
  and access rights in the client daemon — which is why SFS beats the
  blocking SGFS prototype by ~15 % under IOzone while burning >30 % CPU
  on both sides (:mod:`repro.sfs.daemons`).
"""

from repro.sfs.paths import SelfCertifyingPath, host_id_for_key, SfsPathError
from repro.sfs.channel import sfs_client_channel, sfs_server_channel, SfsAuthError
from repro.sfs.daemons import SfsClientDaemon, SfsServerDaemon

__all__ = [
    "SelfCertifyingPath",
    "host_id_for_key",
    "SfsPathError",
    "sfs_client_channel",
    "sfs_server_channel",
    "SfsAuthError",
    "SfsClientDaemon",
    "SfsServerDaemon",
]
