"""Self-certifying pathnames: ``/sfs/@location,HostID/rest...``.

The HostID is a hash of the server's public key (SFS used SHA-1 of the
key plus location; we use SHA-256 of our canonical key encoding).  A
client that is handed a pathname needs no further trust infrastructure:
it connects to ``location`` and verifies that the server's key hashes to
``HostID`` before sending a byte — "separating key management from file
system security".
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.rsa import RsaPublicKey

_B32_ALPHABET = "abcdefghijklmnopqrstuvwxyz234567"


class SfsPathError(Exception):
    """Malformed self-certifying pathname."""


def _b32(data: bytes) -> str:
    """Lowercase base32 without padding (SFS-style compact HostIDs)."""
    bits = 0
    acc = 0
    out = []
    for byte in data:
        acc = (acc << 8) | byte
        bits += 8
        while bits >= 5:
            bits -= 5
            out.append(_B32_ALPHABET[(acc >> bits) & 31])
    if bits:
        out.append(_B32_ALPHABET[(acc << (5 - bits)) & 31])
    return "".join(out)


def host_id_for_key(location: str, key: RsaPublicKey) -> str:
    """The HostID binding a location name to a public key."""
    digest = hashlib.sha256(
        b"sfs-hostid:" + location.encode("utf-8") + b":" + key.to_bytes()
    ).digest()
    return _b32(digest[:20])


@dataclass(frozen=True)
class SelfCertifyingPath:
    """A parsed ``/sfs/@location,hostid/relative/path``."""

    location: str
    host_id: str
    rest: str

    @classmethod
    def parse(cls, path: str) -> "SelfCertifyingPath":
        if not path.startswith("/sfs/@"):
            raise SfsPathError(f"not a self-certifying path: {path!r}")
        body = path[len("/sfs/@"):]
        head, _, rest = body.partition("/")
        location, sep, host_id = head.partition(",")
        if not sep or not location or not host_id:
            raise SfsPathError(f"bad @location,hostid in {path!r}")
        if any(c not in _B32_ALPHABET for c in host_id):
            raise SfsPathError(f"HostID has non-base32 characters: {host_id!r}")
        return cls(location, host_id, "/" + rest if rest else "/")

    @classmethod
    def for_server(cls, location: str, key: RsaPublicKey, rest: str = "/") -> "SelfCertifyingPath":
        return cls(location, host_id_for_key(location, key), rest)

    def verify_key(self, key: RsaPublicKey) -> bool:
        """Does this server key hash to the HostID we were given?"""
        return host_id_for_key(self.location, key) == self.host_id

    def __str__(self) -> str:
        rest = self.rest if self.rest != "/" else ""
        return f"/sfs/@{self.location},{self.host_id}{rest}"
