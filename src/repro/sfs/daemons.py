"""SFS client/server daemons.

Built from the same interposition machinery as the SGFS proxies, with
SFS's distinguishing knobs:

- the client daemon caches attributes and access permissions **in
  memory** aggressively (no data caching, no write-back),
- forwarding is **asynchronous** — multiple outstanding RPCs pipeline
  through the daemon, which is why SFS tops the blocking SGFS prototype
  under IOzone,
- per-message processing cost is substantially higher than the SGFS
  proxies' (the paper measures >30 % CPU for the SFS daemons vs ≤8 %
  for SGFS); the constants live in :mod:`repro.core.calibration`.
"""

from __future__ import annotations

from typing import Set

from repro.crypto.drbg import Drbg
from repro.crypto.rsa import RsaKeyPair
from repro.proxy.client_proxy import ProxyCacheConfig, SgfsClientProxy
from repro.proxy.server_proxy import SgfsServerProxy
from repro.rpc.costs import CostProfile
from repro.sfs.channel import sfs_client_channel, sfs_server_channel
from repro.sfs.paths import SelfCertifyingPath
from repro.sim.core import Simulator


class SfsClientDaemon(SgfsClientProxy):
    """The SFS client daemon: async + in-memory metadata caching."""

    def __init__(
        self,
        sim: Simulator,
        host,
        listen_port: int,
        path: SelfCertifyingPath,
        server_port: int,
        user_key: RsaKeyPair,
        rng: Drbg,
        cost: CostProfile,
        fast_ciphers: bool = True,
    ):
        def upstream_factory():
            sock = yield from host.connect(path.location, server_port)
            channel = yield from sfs_client_channel(
                sim, sock, path, user_key, rng,
                cpu=host.cpu, account="sfsd", fast=fast_ciphers,
            )
            return channel

        super().__init__(
            sim, host, listen_port,
            upstream_factory=upstream_factory,
            cost=cost,
            account="sfsd",
            cache=ProxyCacheConfig(
                enabled=True,
                cache_data=False,      # SFS caches metadata, not data blocks
                cache_attrs=True,
                cache_access=True,
                write_back=False,
                block_size=32768,
            ),
            disk=None,                  # memory-resident caches
            blocking=False,             # asynchronous RPCs — SFS's edge
        )


class SfsServerDaemon(SgfsServerProxy):
    """The SFS server daemon: authenticates users by registered key."""

    def __init__(
        self,
        sim: Simulator,
        host,
        listen_port: int,
        nfs_server_port: int,
        server_key: RsaKeyPair,
        authorized_users: Set[bytes],
        accounts,
        gridmap,
        fs,
        cost: CostProfile,
        session_identity,
        fast_ciphers: bool = True,
    ):
        super().__init__(
            sim, host, listen_port, nfs_server_port,
            accounts=accounts, gridmap=gridmap, fs=fs,
            security=None,              # SFS has its own handshake below
            cost=cost,
            account="sfssd",
            blocking=False,             # async on the server side too
            enable_acls=False,          # SFS uses its own group ACLs, not grid ACLs
            session_identity=session_identity,
        )
        self.server_key = server_key
        self.authorized_users = authorized_users
        self.fast_ciphers = fast_ciphers

    def _session(self, sock):
        """Override: SFS handshake instead of TLS, then serve as usual."""
        try:
            transport = yield from sfs_server_channel(
                self.sim, sock, self.server_key, self.authorized_users,
                cpu=self.host.cpu, account=self.account, fast=self.fast_ciphers,
            )
        except Exception:
            return
        identity = self.session_identity
        mapped = self._map_identity(identity)
        from repro.nfs import protocol as pr
        from repro.rpc.client import RpcClient
        from repro.rpc.transport import StreamTransport

        upstream_sock = yield from self.host.connect(self.host.name, self.nfs_server_port)
        upstream = RpcClient(
            self.sim, StreamTransport(upstream_sock), pr.NFS_PROGRAM, pr.NFS_V3
        )
        try:
            while True:
                record = yield from transport.recv_record()
                if record is None:
                    return
                self.sim.spawn(
                    self._serve(transport, upstream, record, identity, mapped),
                    name="sfs-call",
                )
        finally:
            upstream.close()
            transport.close()
