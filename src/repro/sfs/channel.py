"""SFS secure channel: raw-key handshake, RC4+SHA1 records.

Unlike the GSI/TLS channel, SFS needs no certificates: the *server* is
authenticated because its public key must hash to the HostID embedded
in the self-certifying pathname, and the *user* is authenticated by a
signature with a key the server's authserver already knows (modeled as
an authorized-keys set).  Bulk protection approximates SFS's customized
RC4 + SHA1-HMAC, which the paper likens to the sgfs-rc configuration.

The channel object returned is a :class:`~repro.tls.channel.SecureChannel`
work-alike built from the same record machinery, so the proxy/daemon
layers treat both identically.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.crypto.drbg import Drbg
from repro.crypto.hmac import constant_time_equal, hmac_sha256
from repro.crypto.rsa import CryptoError, RsaKeyPair, RsaPublicKey
from repro.crypto.suites import SUITE_RC4_SHA, CipherSuite, derive_key_block
from repro.rpc.record import RecordReader, RecordWriter
from repro.rpc.transport import Transport
from repro.sfs.paths import SelfCertifyingPath
from repro.sim.core import Simulator
from repro.tls.channel import CPU_HZ, CRYPTO_CPU_FRACTION
from repro.xdr import Packer, Unpacker

#: CPU for the public-key operations of an SFS connection setup.
SFS_HANDSHAKE_CPU = 0.005


class SfsAuthError(Exception):
    """Server key does not match the HostID, or user key not authorized."""


class SfsChannel(Transport):
    """Record transport with RC4+SHA1-class protection."""

    def __init__(self, sim: Simulator, sock, suite: CipherSuite, key_block: bytes,
                 is_client: bool, cpu=None, account: str = "sfsd",
                 fast: bool = True, peer_key: Optional[RsaPublicKey] = None):
        self.sim = sim
        self.sock = sock
        self.suite = suite
        self.cpu = cpu
        self.account = account
        #: optional core pin for multi-core CPUs (see repro.sim.cpu.CPU)
        self.affinity = None
        self.peer_key = peer_key
        half = len(key_block) // 2
        c2s, s2c = key_block[:half], key_block[half:]
        mine, theirs = (c2s, s2c) if is_client else (s2c, c2s)

        def make(material: bytes):
            mac_key = material[: suite.mac.key_len]
            ck = material[suite.mac.key_len : suite.mac.key_len + suite.cipher.key_len]
            iv = material[suite.mac.key_len + suite.cipher.key_len :]
            return suite.cipher.new_state(ck, iv[: suite.cipher.iv_len], fast), mac_key

        self._enc, self._enc_mac = make(mine)
        self._dec, self._dec_mac = make(theirs)
        self._enc_seq = 0
        self._dec_seq = 0
        self._writer = RecordWriter(sock)
        self._reader = RecordReader()
        self._eof = False

    def charge(self, nbytes: int, op: str = "seal"):
        if nbytes <= 0:
            return
        cost = self.suite.cycles_per_byte * nbytes / CPU_HZ
        if self.cpu is not None:
            # Hierarchical sub-account: rolls up into self.account.
            account = f"{self.account}/{op}:{self.suite.name}"
            yield from self.cpu.consume(cost * CRYPTO_CPU_FRACTION, account,
                                        affinity=self.affinity)
            yield self.sim.timeout(cost * (1.0 - CRYPTO_CPU_FRACTION))
        else:
            yield self.sim.timeout(cost)

    def send_record(self, record: bytes) -> None:
        mac = self.suite.mac.compute(
            self._enc_mac, self._enc_seq.to_bytes(8, "big") + record
        )
        self._enc_seq += 1
        self._writer.write(self._enc.encrypt(record + mac))

    def recv_record(self):
        while True:
            frame = self._reader.next_record()
            if frame is not None:
                plain = self._dec.decrypt(frame)
                n = self.suite.mac.digest_len
                if len(plain) < n:
                    raise SfsAuthError("short SFS record")
                record, mac = plain[:-n], plain[-n:]
                expect = self.suite.mac.compute(
                    self._dec_mac, self._dec_seq.to_bytes(8, "big") + record
                )
                if not constant_time_equal(mac, expect):
                    raise SfsAuthError("SFS record MAC failure")
                self._dec_seq += 1
                yield from self.charge(len(record), op="open")
                return record
            if self._eof:
                return None
            chunk = yield from self.sock.recv()
            if chunk == b"":
                self._eof = True
                if self._reader.pending == 0:
                    return None
            else:
                self._reader.feed(chunk)

    def close(self) -> None:
        self.sock.close()

    @property
    def closed(self) -> bool:
        return self.sock.closed


def _read_frame(sock, reader: RecordReader):
    while True:
        frame = reader.next_record()
        if frame is not None:
            return frame
        data = yield from sock.recv()
        if data == b"":
            return None
        reader.feed(data)


def sfs_client_channel(
    sim: Simulator,
    sock,
    path: SelfCertifyingPath,
    user_key: RsaKeyPair,
    rng: Drbg,
    cpu=None,
    account: str = "sfsd",
    suite: CipherSuite = SUITE_RC4_SHA,
    fast: bool = True,
):
    """Process generator: connect-side handshake.

    1. server sends its public key; client checks it against the HostID;
    2. client sends a session secret encrypted to the server key, plus
       its user public key and a signature binding both;
    3. both derive the key block.
    """
    reader = RecordReader()
    writer = RecordWriter(sock)
    if cpu is not None:
        yield from cpu.consume(SFS_HANDSHAKE_CPU, f"{account}/handshake")
    frame = yield from _read_frame(sock, reader)
    if frame is None:
        raise SfsAuthError("server closed during handshake")
    server_key = RsaPublicKey.from_bytes(frame)
    if not path.verify_key(server_key):
        raise SfsAuthError(
            f"server key does not match HostID {path.host_id} — refusing"
        )
    secret = rng.randbytes(32)
    wrapped = server_key.encrypt(secret, rng)
    sig = user_key.sign(b"sfs-auth:" + wrapped)
    p = Packer()
    p.pack_opaque(wrapped)
    p.pack_opaque(user_key.public.to_bytes())
    p.pack_opaque(sig)
    writer.write(p.get_bytes())
    frame = yield from _read_frame(sock, reader)
    if frame != b"OK":
        raise SfsAuthError("server rejected user authentication")
    key_block = derive_key_block(
        hmac_sha256(secret, b"sfs-session"), "sfs keys", suite.key_material_len
    )
    return SfsChannel(sim, sock, suite, key_block, is_client=True, cpu=cpu,
                      account=account, fast=fast, peer_key=server_key)


def sfs_server_channel(
    sim: Simulator,
    sock,
    server_key: RsaKeyPair,
    authorized_users: Set[bytes],
    cpu=None,
    account: str = "sfssd",
    suite: CipherSuite = SUITE_RC4_SHA,
    fast: bool = True,
):
    """Process generator: accept-side handshake.

    ``authorized_users`` holds canonical public-key encodings the
    authserver vouches for.
    """
    reader = RecordReader()
    writer = RecordWriter(sock)
    writer.write(server_key.public.to_bytes())
    frame = yield from _read_frame(sock, reader)
    if frame is None:
        raise SfsAuthError("client closed during handshake")
    if cpu is not None:
        yield from cpu.consume(SFS_HANDSHAKE_CPU, f"{account}/handshake")
    u = Unpacker(frame)
    wrapped = u.unpack_opaque()
    user_key_bytes = u.unpack_opaque()
    sig = u.unpack_opaque()
    user_key = RsaPublicKey.from_bytes(user_key_bytes)
    if not user_key.verify(b"sfs-auth:" + wrapped, sig):
        sock.abort()
        raise SfsAuthError("bad user signature")
    if user_key_bytes not in authorized_users:
        writer.write(b"NO")
        sock.close()
        raise SfsAuthError("user key not authorized")
    try:
        secret = server_key.decrypt(wrapped)
    except CryptoError as exc:
        sock.abort()
        raise SfsAuthError(f"bad key transport: {exc}") from None
    writer.write(b"OK")
    key_block = derive_key_block(
        hmac_sha256(secret, b"sfs-session"), "sfs keys", suite.key_material_len
    )
    return SfsChannel(sim, sock, suite, key_block, is_client=False, cpu=cpu,
                      account=account, fast=fast, peer_key=user_key)
