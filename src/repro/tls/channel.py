"""Secure channel: handshake and record protection.

Wire format: each protocol record is RM-framed (reusing the RPC record
marking codec) and starts with a one-byte content type:

- HANDSHAKE — hello/key-exchange/finished messages, in the clear
  (their secrecy is not required; authenticity comes from Finished MACs
  over the transcript, like TLS),
- DATA — application records: ``cipher(payload || HMAC(seq || payload))``
  MAC-then-encrypt with per-direction 64-bit sequence numbers,
- RENEG / RENEG_ACK — rekeying for long-lived sessions (§4.2).

The handshake (client-initiated, mutual authentication):

1. C→S ``ClientHello``: client_random, requested suite, client cert chain
2. S→C ``ServerHello``: server_random, confirmed suite, server cert chain
   (the server validates the client chain against its trust anchors
   before answering — GSI authentication happens here)
3. C→S ``KeyExchange``: premaster encrypted to the server's public key,
   then ``Finished``: HMAC(master, transcript)
4. S→C ``Finished``: HMAC(master, transcript + "server")

Key material for both directions is derived from the master secret via
the KDF in :mod:`repro.crypto.suites`.

CPU accounting: both the handshake's public-key operations and the
per-byte bulk cipher/MAC work are charged to the endpoint's host CPU
under a caller-chosen account, which is how the security overhead the
paper measures (Figs. 4–6) arises organically.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.crypto.hmac import constant_time_equal, hmac_sha256
from repro.crypto.suites import derive_key_block
from repro.gsi.certs import Certificate, ValidationError, validate_chain
from repro.gsi.names import DistinguishedName
from repro.net.socket import SimSocket
from repro.rpc.costs import batched_seal_cycles
from repro.rpc.record import RecordReader, RecordWriter
from repro.rpc.transport import Transport
from repro.sim.core import Simulator
from repro.sim.cpu import CPU
from repro.sim.sync import Channel, ChannelClosed
from repro.tls.config import SecurityConfig
from repro.xdr import Packer, Unpacker

# content types
HANDSHAKE = 1
DATA = 2
RENEG = 3
RENEG_ACK = 4
CLOSE_NOTIFY = 5

#: Nominal CPU seconds for the public-key operations of one handshake
#: side (RSA-1024 class, 2007 hardware).  Once per session — negligible
#: against session lifetime, as §3.2 argues.
HANDSHAKE_CPU_SECONDS = 0.004

#: CPU seconds per side for an *abbreviated* (session-resumption)
#: handshake: no RSA at all, just randoms, one PRF expansion, and two
#: HMACs — an order of magnitude under the full handshake, which is the
#: entire point of tickets on reconnect-heavy fleets.
RESUME_CPU_SECONDS = 0.0004

#: Virtual CPU frequency used to convert cycles/byte into seconds; the
#: paper's testbed is 3.2 GHz Xeon.
CPU_HZ = 3.2e9

#: Fraction of bulk-crypto time visible as *user CPU* of the proxy
#: process; the rest elapses as wall latency (memory stalls, kernel
#: copies around the cipher, VM scheduling) that per-process user-time
#: sampling does not attribute.  The paper's own numbers exhibit this
#: split: sgfs-aes adds ~0.9 ms/op of runtime while the sampled proxy
#: CPU accounts for only ~0.3 ms/op of it (Figs. 4–6).
CRYPTO_CPU_FRACTION = 0.5


class TlsError(Exception):
    """Secure channel protocol failure."""


class HandshakeError(TlsError):
    """Authentication or negotiation failure during the handshake."""


class IntegrityError(TlsError):
    """A record failed MAC verification or decryption."""


class SessionTicketCache:
    """Server-side store of resumable sessions, keyed by opaque ticket.

    A ticket is issued at handshake completion and redeemed **once**: a
    successful abbreviated handshake consumes it and issues a fresh one,
    so a replayed ClientHello cannot resume twice.  Redemption checks
    the ticket's age against ``lifetime``; stale tickets silently miss
    and the client falls back to a full handshake.  ``flush()`` models a
    server-proxy crash losing its in-memory cache — every reconnecting
    client then pays the full RSA handshake again.
    """

    def __init__(self, sim: Simulator, rng, lifetime: float = 3600.0):
        self.sim = sim
        self.rng = rng
        self.lifetime = lifetime
        #: ticket -> (master_secret, peer_cert, peer_identity, issued_at)
        self._entries: dict = {}
        self.issued = 0
        self.redeemed = 0

    def __len__(self) -> int:
        return len(self._entries)

    def issue(self, master: bytes, peer_certificate, peer_identity) -> bytes:
        ticket = self.rng.randbytes(16)
        self._entries[ticket] = (master, peer_certificate, peer_identity,
                                 self.sim.now)
        self.issued += 1
        return ticket

    def redeem(self, ticket: bytes):
        """(master, cert, identity) for a live ticket, else None.

        One-shot: the entry is removed whether or not it is still live.
        """
        entry = self._entries.pop(ticket, None)
        if entry is None:
            return None
        master, cert, identity, issued_at = entry
        if self.sim.now - issued_at > self.lifetime:
            return None
        self.redeemed += 1
        return master, cert, identity

    def flush(self) -> None:
        self._entries.clear()


class ClientSessionStore:
    """Client-side slot for the latest resumable session (one upstream).

    ``take()`` pops the stored state — tickets are single-use on the
    wire, so the client never offers the same one twice; a successful
    handshake (resumed or full) saves the replacement ticket.
    """

    def __init__(self):
        self.ticket: Optional[bytes] = None
        self.master: Optional[bytes] = None
        self.server_certificate = None
        self.server_identity = None

    def save(self, ticket: bytes, master: bytes, certificate, identity) -> None:
        if ticket:
            self.ticket = ticket
            self.master = master
            self.server_certificate = certificate
            self.server_identity = identity

    def take(self):
        state = (self.ticket, self.master, self.server_certificate,
                 self.server_identity)
        self.ticket = self.master = None
        self.server_certificate = self.server_identity = None
        return state


class _Direction:
    """Keys and state for one direction of traffic."""

    __slots__ = ("cipher_state", "mac_key", "seq")

    def __init__(self, cipher_state, mac_key: bytes):
        self.cipher_state = cipher_state
        self.mac_key = mac_key
        self.seq = 0


def _derive_directions(config: SecurityConfig, master: bytes, is_client: bool):
    """Split the key block into client->server and server->client states."""
    suite = config.suite
    block = derive_key_block(master, "key expansion", suite.key_material_len)
    off = 0

    def take(n: int) -> bytes:
        nonlocal off
        out = block[off : off + n]
        off += n
        return out

    c_mac = take(suite.mac.key_len)
    s_mac = take(suite.mac.key_len)
    c_key = take(suite.cipher.key_len)
    s_key = take(suite.cipher.key_len)
    c_iv = take(suite.cipher.iv_len)
    s_iv = take(suite.cipher.iv_len)

    c2s = _Direction(suite.cipher.new_state(c_key, c_iv, config.fast_ciphers), c_mac)
    s2c = _Direction(suite.cipher.new_state(s_key, s_iv, config.fast_ciphers), s_mac)
    return (c2s, s2c) if is_client else (c2s, s2c)


class SecureChannel(Transport):
    """An established secure channel implementing the Transport interface.

    Create via :func:`client_handshake` / :func:`server_handshake`.
    """

    def __init__(
        self,
        sim: Simulator,
        sock: SimSocket,
        config: SecurityConfig,
        is_client: bool,
        send_state: _Direction,
        recv_state: _Direction,
        peer_certificate: Certificate,
        peer_identity: DistinguishedName,
        master_secret: bytes,
        cpu: Optional[CPU] = None,
        account: str = "tls",
    ):
        self.sim = sim
        self.sock = sock
        self.config = config
        self.is_client = is_client
        self._send = send_state
        self._recv = recv_state
        self.peer_certificate = peer_certificate
        self.peer_identity = peer_identity
        self._master = master_secret
        self.cpu = cpu
        self.account = account
        #: pin this channel's bulk-crypto CPU charges to one core of a
        #: multi-core CPU (the server proxy assigns a per-session value);
        #: None lets the work float to any idle core.
        self.affinity: Optional[int] = None
        #: True for channels established by an abbreviated handshake.
        self.resumed = False
        #: True when the session-ticket extension was on the wire.
        self.tickets = False
        self._writer = RecordWriter(sock)
        self._reader = RecordReader()
        self._eof = False
        self._out_queue: Optional[Channel] = None
        self._sealer_proc = None
        self.renegotiations = 0
        self.bytes_protected = 0
        self.obs = sim.obs
        suite = config.suite.name
        self._c_records_out = self.obs.counter("tls", "records_out", suite=suite)
        self._c_records_in = self.obs.counter("tls", "records_in", suite=suite)
        self._c_bytes_sealed = self.obs.counter("tls", "bytes_sealed", suite=suite)
        self._c_bytes_opened = self.obs.counter("tls", "bytes_opened", suite=suite)
        self._pending_recv_state: Optional[_Direction] = None
        self._reneg_timer_handle = None
        if config.renegotiate_interval:
            self._arm_reneg_timer()

    # -- cost model --------------------------------------------------------

    def _crypto_cost(self, nbytes: int) -> float:
        return self.config.suite.cycles_per_byte * nbytes / CPU_HZ

    def charge(self, nbytes: int, op: str = "seal"):
        """Process generator: charge bulk-crypto work for nbytes.

        Split between user CPU (visible in the utilization figures) and
        wall latency per CRYPTO_CPU_FRACTION.  The CPU time lands in the
        hierarchical sub-account ``<account>/<op>:<suite>`` so the
        profiler can attribute cipher work per direction; ledger queries
        for the bare account still include it (see
        :class:`repro.sim.cpu.CpuLedger`).
        """
        if nbytes <= 0:
            return
        cost = self._crypto_cost(nbytes)
        if cost <= 0:
            return
        if self.cpu is not None:
            account = f"{self.account}/{op}:{self.config.suite.name}"
            yield from self.cpu.consume(cost * CRYPTO_CPU_FRACTION, account,
                                        affinity=self.affinity)
            yield self.sim.timeout(cost * (1.0 - CRYPTO_CPU_FRACTION))
        else:
            yield self.sim.timeout(cost)

    # -- record protection ---------------------------------------------------

    def _protect(self, ctype: int, payload: bytes) -> bytes:
        d = self._send
        mac = self.config.suite.mac.compute(
            d.mac_key, struct.pack(">QB", d.seq, ctype) + payload
        )
        d.seq += 1
        body = d.cipher_state.encrypt(payload + mac)
        return bytes([ctype]) + body

    def _unprotect(self, record: bytes) -> tuple[int, bytes]:
        if not record:
            raise IntegrityError("empty record")
        ctype = record[0]
        d = self._recv
        try:
            plain = d.cipher_state.decrypt(record[1:])
        except Exception as exc:
            raise IntegrityError(f"decryption failed: {exc}") from None
        mac_len = self.config.suite.mac.digest_len
        if mac_len:
            if len(plain) < mac_len:
                raise IntegrityError("record shorter than MAC")
            payload, mac = plain[:-mac_len], plain[-mac_len:]
            expect = self.config.suite.mac.compute(
                d.mac_key, struct.pack(">QB", d.seq, ctype) + payload
            )
            if not constant_time_equal(mac, expect):
                raise IntegrityError("MAC verification failed")
        else:
            payload = plain
        d.seq += 1
        return ctype, payload

    # -- Transport interface ---------------------------------------------------

    def send_record(self, record: bytes) -> None:
        """Protect and transmit one application record.

        Note: cost charging for the synchronous API happens lazily via
        :meth:`charge` by callers that own a process context; the SGFS
        proxy and RPC layers always do.
        """
        self.bytes_protected += len(record)
        if self.obs.enabled:
            self._c_records_out.inc()
            self._c_bytes_sealed.inc(len(record))
        self._writer.write(self._protect(DATA, record))

    # -- batched sealing -----------------------------------------------------

    @property
    def batched(self) -> bool:
        """True when outbound records go through the batch sealer."""
        return self.config.batch_records > 1

    def queue_record(self, record: bytes) -> None:
        """Hand one application record to the batch sealer (async send).

        The sealer process drains the queue in batches of up to
        ``config.batch_records`` same-session records, charges one
        coalesced seal (:func:`repro.rpc.costs.batched_seal_cycles` —
        per-record setup paid once per batch), then transmits each
        record.  Wire format is unchanged: every record is still sealed
        and framed individually, only the *cost* is amortized.  As a
        side effect the caller no longer blocks on outbound crypto,
        which pipelines request handling against sealing.
        """
        if self._out_queue is None:
            self._out_queue = Channel(self.sim, name=f"tls-sealq:{self.account}")
            self._sealer_proc = self.sim.spawn(
                self._sealer(), name=f"tls-sealer:{self.account}"
            )
        self._out_queue.put(record)

    def _sealer(self):
        q = self._out_queue
        limit = max(1, self.config.batch_records)
        suite = self.config.suite
        while True:
            try:
                first = yield q.get()
            except ChannelClosed:
                return
            batch = [first]
            while len(batch) < limit:
                ok, item = q.try_get()
                if not ok:
                    break
                batch.append(item)
            nbytes = sum(len(r) for r in batch)
            cost = batched_seal_cycles(suite, nbytes, len(batch)) / CPU_HZ
            if cost > 0:
                if self.cpu is not None:
                    account = f"{self.account}/seal:{suite.name}"
                    yield from self.cpu.consume(cost * CRYPTO_CPU_FRACTION,
                                                account, affinity=self.affinity)
                    yield self.sim.timeout(cost * (1.0 - CRYPTO_CPU_FRACTION))
                else:
                    yield self.sim.timeout(cost)
            for rec in batch:
                try:
                    self.send_record(rec)
                except Exception:
                    return  # peer gone mid-batch; session teardown handles it

    def recv_record(self):
        """Process generator: next application record or None on EOF.

        Transparently services renegotiation control records.
        """
        while True:
            framed = yield from self._next_frame()
            if framed is None:
                return None
            ctype, payload = self._unprotect(framed)
            if ctype == DATA:
                if self.obs.enabled:
                    self._c_records_in.inc()
                    self._c_bytes_opened.inc(len(payload))
                yield from self.charge(len(payload), op="open")
                return payload
            if ctype == RENEG:
                self._handle_reneg(payload)
                continue
            if ctype == RENEG_ACK:
                self._handle_reneg_ack(payload)
                continue
            if ctype == CLOSE_NOTIFY:
                self._eof = True
                return None
            raise TlsError(f"unexpected content type {ctype}")

    def _next_frame(self):
        while True:
            rec = self._reader.next_record()
            if rec is not None:
                return rec
            if self._eof:
                return None
            chunk = yield from self.sock.recv()
            if chunk == b"":
                self._eof = True
                if self._reader.pending == 0:
                    return None
            else:
                self._reader.feed(chunk)

    def close(self) -> None:
        if self._out_queue is not None and not self._out_queue.closed:
            self._out_queue.close()  # sealer drains what's queued, then exits
        if not self.sock.closed:
            try:
                self._writer.write(self._protect(CLOSE_NOTIFY, b""))
            except Exception:
                pass
            self.sock.close()

    @property
    def closed(self) -> bool:
        return self.sock.closed

    # -- renegotiation (§4.2) ----------------------------------------------------

    def renegotiate(self) -> None:
        """Initiate a rekey: fresh randoms, fresh key block, no new certs.

        The peer's identity was established by the original handshake;
        renegotiation refreshes session keys for long-lived sessions (or
        after a reload signal).  Protocol: we send RENEG carrying a new
        premaster encrypted to the peer's public key, switch our send
        keys immediately, and switch receive keys when the RENEG_ACK
        arrives.  Ordered delivery makes this race-free.
        """
        premaster = self.config.rng.randbytes(48)
        wrapped = self.peer_certificate.public_key.encrypt(premaster, self.config.rng)
        p = Packer()
        p.pack_opaque(wrapped)
        new_master = hmac_sha256(self._master, b"reneg" + premaster)
        send_new, recv_new = self._new_states(new_master)
        self._writer.write(self._protect(RENEG, p.get_bytes()))
        self._send = send_new
        self._pending_recv_state = recv_new
        self._master = new_master
        self.renegotiations += 1
        if self.obs.enabled:
            self.obs.counter("tls", "renegotiations",
                             suite=self.config.suite.name).inc()

    def _new_states(self, master: bytes) -> tuple[_Direction, _Direction]:
        c2s, s2c = _derive_directions(self.config, master, self.is_client)
        if self.is_client:
            return c2s, s2c
        return s2c, c2s

    def _handle_reneg(self, payload: bytes) -> None:
        u = Unpacker(payload)
        wrapped = u.unpack_opaque()
        premaster = self.config.credential.keypair.decrypt(wrapped)
        new_master = hmac_sha256(self._master, b"reneg" + premaster)
        send_new, recv_new = self._new_states(new_master)
        # Peer already switched its send keys: our receive switches now.
        # Our ACK goes out under the OLD send keys, then we switch.
        self._writer.write(self._protect(RENEG_ACK, b""))
        self._recv = recv_new
        self._send = send_new
        self._master = new_master
        self.renegotiations += 1

    def _handle_reneg_ack(self, _payload: bytes) -> None:
        pending = getattr(self, "_pending_recv_state", None)
        if pending is None:
            raise TlsError("unsolicited RENEG_ACK")
        self._recv = pending
        self._pending_recv_state = None

    def _arm_reneg_timer(self) -> None:
        interval = self.config.renegotiate_interval

        def tick() -> None:
            if self.closed or not self.is_client:
                return
            self.renegotiate()
            self._arm_reneg_timer()

        self._reneg_timer_handle = self.sim.call_later(interval, tick)


# ---------------------------------------------------------------------------
# handshake
# ---------------------------------------------------------------------------


def _pack_chain(p: Packer, cert: Certificate, chain) -> None:
    p.pack_opaque(cert.to_bytes())
    p.pack_array([c.to_bytes() for c in chain], p.pack_opaque)


def _unpack_chain(u: Unpacker):
    cert = Certificate.from_bytes(u.unpack_opaque())
    chain = [Certificate.from_bytes(b) for b in u.unpack_array(u.unpack_opaque, max_len=8)]
    return cert, chain


def _validate_peer(config: SecurityConfig, now: float, cert, chain) -> DistinguishedName:
    try:
        return validate_chain(cert, chain, config.trust_anchors, now)
    except ValidationError as exc:
        raise HandshakeError(f"peer certificate rejected: {exc}") from None


def client_handshake(
    sim: Simulator,
    sock: SimSocket,
    config: SecurityConfig,
    cpu: Optional[CPU] = None,
    account: str = "tls",
):
    """Process generator: run the client side; return a SecureChannel.

    With ``config.session_tickets`` the hello carries the stored ticket
    (if any) and the handshake resumes abbreviated when the server still
    remembers the session — skipping the RSA key exchange entirely.
    """
    with sim.tracer.span(
        "tls.handshake", cat="tls", role="client", suite=config.suite.name
    ):
        channel = yield from _client_handshake(sim, sock, config, cpu, account)
    if sim.obs.enabled:
        sim.obs.counter("tls", "handshakes", role="client",
                        suite=config.suite.name).inc()
        _count_handshake_kind(sim, channel, "client")
    return channel


def _count_handshake_kind(sim: Simulator, channel: SecureChannel, role: str) -> None:
    """resumptions / full_handshakes split, counted only for sessions
    that negotiated the ticket extension — telemetry of runs without
    tickets (all goldens) is unchanged."""
    if not channel.tickets:
        return
    kind = "resumptions" if channel.resumed else "full_handshakes"
    sim.obs.counter("tls", kind, role=role, suite=channel.config.suite.name).inc()


def _client_handshake(
    sim: Simulator,
    sock: SimSocket,
    config: SecurityConfig,
    cpu: Optional[CPU],
    account: str,
):
    writer = RecordWriter(sock)
    reader = RecordReader()

    def read_hs():
        while True:
            rec = reader.next_record()
            if rec is not None:
                if rec[0] != HANDSHAKE:
                    raise HandshakeError(f"expected handshake record, got type {rec[0]}")
                return rec[1:]
            chunk = yield from sock.recv()
            if chunk == b"":
                raise HandshakeError("connection closed during handshake")
            reader.feed(chunk)

    offer_tickets = config.session_tickets
    ticket = old_master = cached_cert = cached_identity = None
    if offer_tickets:
        if config.session_store is None:
            config.session_store = ClientSessionStore()
        ticket, old_master, cached_cert, cached_identity = (
            config.session_store.take()
        )
    attempting_resume = bool(offer_tickets and ticket)

    # When we might resume, the CPU charge is deferred until the server
    # reveals whether the abbreviated path applies (RESUME vs. full).
    if cpu is not None and not attempting_resume:
        yield from cpu.consume(HANDSHAKE_CPU_SECONDS, f"{account}/handshake")

    client_random = config.rng.randbytes(32)
    hello = Packer()
    hello.pack_opaque(client_random)
    hello.pack_string(config.suite.name)
    _pack_chain(hello, config.credential.certificate, config.credential.chain)
    if offer_tickets:
        # Ticket extension: trailing opaque (empty = "send me a ticket").
        hello.pack_opaque(ticket or b"")
    transcript = hello.get_bytes()
    writer.write(bytes([HANDSHAKE]) + transcript)

    server_hello = yield from read_hs()
    transcript_with_hello = transcript + server_hello
    u = Unpacker(server_hello)
    if offer_tickets:
        # Server answers the extension with a leading resumed flag.
        if u.unpack_uint():
            if cpu is not None:
                yield from cpu.consume(RESUME_CPU_SECONDS, f"{account}/handshake")
            server_random = u.unpack_opaque()
            suite_name = u.unpack_string()
            if suite_name != config.suite.name:
                raise HandshakeError(
                    f"server chose {suite_name!r}, we require {config.suite.name!r}"
                )
            new_ticket = u.unpack_opaque()
            body = server_hello[: u.position]
            server_finished = u.unpack_opaque()
            new_master = hmac_sha256(
                old_master, b"resume" + client_random + server_random
            )
            expect = hmac_sha256(new_master, transcript + body + b"server")
            if not constant_time_equal(server_finished, expect):
                raise HandshakeError("abbreviated server Finished MAC mismatch")
            reply = Packer()
            reply.pack_opaque(
                hmac_sha256(new_master, transcript + body + b"client")
            )
            writer.write(bytes([HANDSHAKE]) + reply.get_bytes())
            config.session_store.save(
                new_ticket, new_master, cached_cert, cached_identity
            )
            c2s, s2c = _derive_directions(config, new_master, is_client=True)
            channel = SecureChannel(
                sim, sock, config, True, c2s, s2c,
                cached_cert, cached_identity, new_master,
                cpu=cpu, account=account,
            )
            channel._reader = reader  # keep any early-arrived bytes
            channel.tickets = True
            channel.resumed = True
            return channel
        # Fallback: server declined (unknown/expired ticket, or no ticket
        # offered) — full handshake, paying the RSA cost we deferred.
        if cpu is not None and attempting_resume:
            yield from cpu.consume(HANDSHAKE_CPU_SECONDS, f"{account}/handshake")
    transcript = transcript_with_hello
    server_random = u.unpack_opaque()
    suite_name = u.unpack_string()
    if suite_name != config.suite.name:
        raise HandshakeError(
            f"server chose {suite_name!r}, we require {config.suite.name!r}"
        )
    server_cert, server_chain = _unpack_chain(u)
    peer_identity = _validate_peer(config, sim.now, server_cert, server_chain)

    premaster = config.rng.randbytes(48)
    wrapped = server_cert.public_key.encrypt(premaster, config.rng)
    master = hmac_sha256(premaster, client_random + server_random)

    kx = Packer()
    kx.pack_opaque(wrapped)
    kx_prefix = kx.get_bytes()  # the part both Finished MACs cover
    finished = hmac_sha256(master, transcript + kx_prefix)
    kx.pack_opaque(finished)
    writer.write(bytes([HANDSHAKE]) + kx.get_bytes())

    server_finished = yield from read_hs()
    expect = hmac_sha256(master, transcript + kx_prefix + b"server")
    su = Unpacker(server_finished)
    if not constant_time_equal(su.unpack_opaque(), expect):
        raise HandshakeError("server Finished MAC mismatch")

    channel = SecureChannel(
        sim, sock, config, True,
        *_derive_directions(config, master, is_client=True),
        server_cert, peer_identity, master, cpu=cpu, account=account,
    )
    channel._reader = reader  # keep any early-arrived bytes
    if offer_tickets:
        channel.tickets = True
        # The server's Finished carries our new ticket (may be empty if
        # the server does not issue them).
        new_ticket = su.unpack_opaque()
        config.session_store.save(new_ticket, master, server_cert, peer_identity)
    return channel


def server_handshake(
    sim: Simulator,
    sock: SimSocket,
    config: SecurityConfig,
    cpu: Optional[CPU] = None,
    account: str = "tls",
    ticket_cache: Optional[SessionTicketCache] = None,
):
    """Process generator: run the server side; return a SecureChannel.

    The returned channel's ``peer_identity`` is the authenticated grid
    identity (base DN, proxies resolved) the server-side SGFS proxy
    authorizes against.

    ``ticket_cache`` enables session resumption: full handshakes from
    ticket-offering clients are answered with a fresh ticket, and a
    presented ticket that is still live runs the abbreviated handshake
    (no RSA, no chain validation — identity comes from the cache).
    """
    with sim.tracer.span(
        "tls.handshake", cat="tls", role="server", suite=config.suite.name
    ):
        channel = yield from _server_handshake(
            sim, sock, config, cpu, account, ticket_cache
        )
    if sim.obs.enabled:
        sim.obs.counter("tls", "handshakes", role="server",
                        suite=config.suite.name).inc()
        _count_handshake_kind(sim, channel, "server")
    return channel


def _server_handshake(
    sim: Simulator,
    sock: SimSocket,
    config: SecurityConfig,
    cpu: Optional[CPU],
    account: str,
    ticket_cache: Optional[SessionTicketCache] = None,
):
    writer = RecordWriter(sock)
    reader = RecordReader()

    def read_hs():
        while True:
            rec = reader.next_record()
            if rec is not None:
                if rec[0] != HANDSHAKE:
                    raise HandshakeError(f"expected handshake record, got type {rec[0]}")
                return rec[1:]
            chunk = yield from sock.recv()
            if chunk == b"":
                raise HandshakeError("connection closed during handshake")
            reader.feed(chunk)

    client_hello = yield from read_hs()
    transcript = client_hello
    u = Unpacker(client_hello)
    client_random = u.unpack_opaque()
    suite_name = u.unpack_string()
    if suite_name != config.suite.name:
        raise HandshakeError(
            f"client requested {suite_name!r}, session requires {config.suite.name!r}"
        )
    client_cert, client_chain = _unpack_chain(u)
    # Ticket extension: any trailing bytes are the client's ticket offer.
    offered = u.position < len(client_hello)
    ticket = u.unpack_opaque() if offered else b""
    session = (ticket_cache.redeem(ticket)
               if (ticket and ticket_cache is not None) else None)

    if session is not None:
        # Abbreviated handshake: identity and master come from the
        # cache; no RSA, no chain validation.
        old_master, peer_cert, peer_identity = session
        if cpu is not None:
            yield from cpu.consume(RESUME_CPU_SECONDS, f"{account}/handshake")
        server_random = config.rng.randbytes(32)
        new_master = hmac_sha256(
            old_master, b"resume" + client_random + server_random
        )
        new_ticket = ticket_cache.issue(new_master, peer_cert, peer_identity)
        body = Packer()
        body.pack_uint(1)
        body.pack_opaque(server_random)
        body.pack_string(config.suite.name)
        body.pack_opaque(new_ticket)
        body_bytes = body.get_bytes()
        fin = Packer()
        fin.pack_opaque(hmac_sha256(new_master, transcript + body_bytes + b"server"))
        writer.write(bytes([HANDSHAKE]) + body_bytes + fin.get_bytes())

        client_finished = yield from read_hs()
        cu = Unpacker(client_finished)
        expect = hmac_sha256(new_master, transcript + body_bytes + b"client")
        if not constant_time_equal(cu.unpack_opaque(), expect):
            raise HandshakeError("abbreviated client Finished MAC mismatch")
        s2c_pair = _derive_directions(config, new_master, is_client=False)
        channel = SecureChannel(
            sim, sock, config, False, s2c_pair[1], s2c_pair[0],
            peer_cert, peer_identity, new_master, cpu=cpu, account=account,
        )
        channel._reader = reader  # client DATA may ride the same chunk
        channel.tickets = True
        channel.resumed = True
        return channel

    if cpu is not None:
        yield from cpu.consume(HANDSHAKE_CPU_SECONDS, f"{account}/handshake")
    if config.require_peer_cert:
        peer_identity = _validate_peer(config, sim.now, client_cert, client_chain)
    else:
        peer_identity = client_cert.subject

    server_random = config.rng.randbytes(32)
    hello = Packer()
    if offered:
        hello.pack_uint(0)  # extension answered: not resumed
    hello.pack_opaque(server_random)
    hello.pack_string(config.suite.name)
    _pack_chain(hello, config.credential.certificate, config.credential.chain)
    hello_bytes = hello.get_bytes()
    writer.write(bytes([HANDSHAKE]) + hello_bytes)
    transcript += hello_bytes

    kx_bytes = yield from read_hs()
    ku = Unpacker(kx_bytes)
    wrapped = ku.unpack_opaque()
    kx_prefix_len = ku.position  # bytes covered by the client's Finished MAC
    premaster = config.credential.keypair.decrypt(wrapped)
    master = hmac_sha256(premaster, client_random + server_random)
    finished = ku.unpack_opaque()
    expect = hmac_sha256(master, transcript + kx_bytes[:kx_prefix_len])
    if not constant_time_equal(finished, expect):
        raise HandshakeError("client Finished MAC mismatch")

    reply = Packer()
    reply.pack_opaque(hmac_sha256(master, transcript + kx_bytes[:kx_prefix_len] + b"server"))
    if offered:
        # Answer the extension: issue a ticket for this session (empty
        # when this server does not keep a ticket cache).
        new_ticket = (
            ticket_cache.issue(master, client_cert, peer_identity)
            if ticket_cache is not None else b""
        )
        reply.pack_opaque(new_ticket)
    writer.write(bytes([HANDSHAKE]) + reply.get_bytes())

    c2s, s2c = _derive_directions(config, master, is_client=False)
    channel = SecureChannel(
        sim, sock, config, False, s2c, c2s,
        client_cert, peer_identity, master, cpu=cpu, account=account,
    )
    channel._reader = reader  # keep any early-arrived bytes
    channel.tickets = offered
    return channel
