"""DTLS-style datagram protection.

The paper's secure RPC library leans on OpenSSL's then-new datagram
support (DTLS) to secure RPC over UDP (§4.1).  This module provides the
datagram analog of the stream channel: each datagram is independently
protected — explicit 64-bit sequence number, per-suite cipher, and
SHA1-HMAC — with an anti-replay sliding window on receive, since
datagrams may be duplicated (retransmission) or reordered.

Key establishment reuses the session's master secret (in SGFS the
stream handshake has already authenticated both ends; DTLS keys are
derived from the same secret with a distinct label), so a
:class:`DatagramProtector` is constructed directly from key material
rather than running a second handshake.
"""

from __future__ import annotations

import struct

from repro.crypto.hmac import constant_time_equal
from repro.crypto.suites import CipherSuite, SUITE_AES_SHA, derive_key_block


class DtlsError(Exception):
    """Bad datagram: forged, corrupted, or replayed."""


class ReplayWindow:
    """RFC 4347-style 64-entry anti-replay window."""

    def __init__(self, size: int = 64):
        self.size = size
        self._highest = -1
        self._bits = 0

    def check_and_update(self, seq: int) -> bool:
        """True if ``seq`` is fresh; records it.  False for replays."""
        if seq > self._highest:
            shift = seq - self._highest
            self._bits = ((self._bits << shift) | 1) & ((1 << self.size) - 1)
            self._highest = seq
            return True
        offset = self._highest - seq
        if offset >= self.size:
            return False  # too old to judge: reject
        mask = 1 << offset
        if self._bits & mask:
            return False  # seen before
        self._bits |= mask
        return True


class DatagramProtector:
    """Seals/opens individual datagrams for one direction pair.

    Construct a matched pair with :func:`protector_pair`.
    """

    def __init__(self, suite: CipherSuite, send_material: bytes,
                 recv_material: bytes, fast: bool = True):
        self.suite = suite

        def split(material: bytes):
            mac_key = material[: suite.mac.key_len]
            key = material[suite.mac.key_len: suite.mac.key_len + suite.cipher.key_len]
            iv = material[
                suite.mac.key_len + suite.cipher.key_len:
                suite.mac.key_len + suite.cipher.key_len + suite.cipher.iv_len
            ]
            return mac_key, key, iv

        s_mac, s_key, s_iv = split(send_material)
        r_mac, r_key, r_iv = split(recv_material)
        self._send_mac = s_mac
        self._recv_mac = r_mac
        # Per-datagram independence: derive a fresh keystream per seq by
        # folding the sequence number into the IV position via a fresh
        # state per datagram (stream state reuse would break under loss).
        self._send_params = (s_key, s_iv, fast)
        self._recv_params = (r_key, r_iv, fast)
        self._send_seq = 0
        self._window = ReplayWindow()
        self.replays_rejected = 0
        self.macs_rejected = 0

    def _state(self, params, seq: int):
        key, iv, fast = params
        if self.suite.cipher.name == "null":
            return self.suite.cipher.new_state(key, iv, fast)
        # fold the sequence number into the IV (nonce construction)
        seq_iv = bytearray(iv if iv else bytes(16))
        seq_bytes = struct.pack(">Q", seq)
        for i, b in enumerate(seq_bytes):
            seq_iv[i % len(seq_iv)] ^= b
        # RC4 has no IV: fold into the key instead
        if self.suite.cipher.iv_len == 0:
            mixed = bytearray(key)
            for i, b in enumerate(seq_bytes):
                mixed[i % len(mixed)] ^= b
            return self.suite.cipher.new_state(bytes(mixed), b"", fast)
        return self.suite.cipher.new_state(key, bytes(seq_iv), fast)

    def seal(self, payload: bytes) -> bytes:
        seq = self._send_seq
        self._send_seq += 1
        mac = self.suite.mac.compute(
            self._send_mac, struct.pack(">Q", seq) + payload
        )
        body = self._state(self._send_params, seq).encrypt(payload + mac)
        return struct.pack(">Q", seq) + body

    def open(self, datagram: bytes) -> bytes:
        if len(datagram) < 8:
            raise DtlsError("short datagram")
        seq = struct.unpack(">Q", datagram[:8])[0]
        try:
            plain = self._state(self._recv_params, seq).decrypt(datagram[8:])
        except Exception as exc:
            self.macs_rejected += 1
            raise DtlsError(f"decrypt failed: {exc}") from None
        n = self.suite.mac.digest_len
        if n:
            if len(plain) < n:
                self.macs_rejected += 1
                raise DtlsError("datagram shorter than MAC")
            payload, mac = plain[:-n], plain[-n:]
            expect = self.suite.mac.compute(
                self._recv_mac, struct.pack(">Q", seq) + payload
            )
            if not constant_time_equal(mac, expect):
                self.macs_rejected += 1
                raise DtlsError("datagram MAC failure")
        else:
            payload = plain
        if not self._window.check_and_update(seq):
            self.replays_rejected += 1
            raise DtlsError(f"replayed datagram seq={seq}")
        return payload


def protector_pair(master_secret: bytes, suite: CipherSuite = SUITE_AES_SHA,
                   fast: bool = True):
    """(client_protector, server_protector) sharing derived material."""
    per_dir = suite.mac.key_len + suite.cipher.key_len + suite.cipher.iv_len
    block = derive_key_block(master_secret, "dtls key expansion", 2 * per_dir)
    c2s, s2c = block[:per_dir], block[per_dir:]
    client = DatagramProtector(suite, c2s, s2c, fast)
    server = DatagramProtector(suite, s2c, c2s, fast)
    return client, server
