"""SSL-like secure channel for RPC transports (paper §4.1).

Reimplements the essential structure of SSL/TLS the paper gets from
OpenSSL: a mutually-authenticated handshake with X.509-style certificate
exchange and RSA key transport, key derivation from a premaster secret,
and a record layer providing confidentiality (per-suite bulk cipher) and
integrity (SHA1-HMAC over a per-direction sequence number), with support
for renegotiation — including the timer-driven periodic rekey of long
sessions described in §4.2.

:class:`~repro.tls.channel.SecureChannel` implements the same transport
interface as :class:`~repro.rpc.transport.StreamTransport`, so the RPC
endpoints and SGFS proxies are oblivious to whether they run secured —
exactly the drop-in property of the paper's ``clnt_tli_ssl_create``.
"""

from repro.tls.config import SecurityConfig
from repro.tls.dtls import DatagramProtector, DtlsError, protector_pair
from repro.tls.channel import (
    SecureChannel,
    SessionTicketCache,
    TlsError,
    HandshakeError,
    IntegrityError,
    client_handshake,
    server_handshake,
)

__all__ = [
    "SecurityConfig",
    "SecureChannel",
    "SessionTicketCache",
    "TlsError",
    "HandshakeError",
    "IntegrityError",
    "client_handshake",
    "server_handshake",
    "DatagramProtector",
    "DtlsError",
    "protector_pair",
]
