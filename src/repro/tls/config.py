"""Security configuration for a secure channel / SGFS session.

This is the programmatic form of the proxy configuration file's security
section (paper §4.2): which credential to present, which CAs to trust,
which cipher suite to use, and the renegotiation policy.  Proxies hold a
:class:`SecurityConfig` and can be signalled to reload it mid-session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.crypto.drbg import Drbg
from repro.crypto.suites import CipherSuite, SUITE_AES_SHA, SUITES
from repro.gsi.certs import Certificate, Credential


@dataclass
class SecurityConfig:
    """Everything one endpoint needs to run the secure channel."""

    credential: Credential
    trust_anchors: Tuple[Certificate, ...]
    suite: CipherSuite = SUITE_AES_SHA
    #: Use the fast keyed-XOR bulk transform (benchmarks) instead of the
    #: bit-exact ciphers (tests).  CPU cost charged is identical.
    fast_ciphers: bool = True
    #: Refuse peers that present no certificate (always true for SGFS).
    require_peer_cert: bool = True
    #: Automatic rekey interval in virtual seconds; None disables.
    renegotiate_interval: Optional[float] = None
    #: Offer/issue session tickets (RFC-5077 style): the server hands the
    #: client an opaque ticket at full-handshake time, and a reconnecting
    #: client presents it to run an abbreviated handshake that skips the
    #: RSA key exchange entirely.  Off by default — the golden
    #: single-session runs never reconnect and stay byte-identical.
    session_tickets: bool = False
    #: Ticket validity in virtual seconds; expired tickets silently fall
    #: back to a full handshake.
    ticket_lifetime: float = 3600.0
    #: Coalesce up to this many queued outbound records into one sealing
    #: operation (amortizing per-record MAC/cipher setup).  ``1`` keeps
    #: the legacy one-charge-per-record path and historic schedules.
    batch_records: int = 1
    #: Client-side slot for the most recent (ticket, master, cert);
    #: created lazily on the first full handshake that yields a ticket.
    session_store: Optional[object] = None
    #: Entropy source for randoms/premaster (deterministic per seed).
    rng: Drbg = field(default_factory=lambda: Drbg("tls-default"))

    @classmethod
    def for_session(
        cls,
        credential: Credential,
        trust_anchors: Sequence[Certificate],
        suite_name: str = "aes-256-cbc-sha1",
        **kwargs,
    ) -> "SecurityConfig":
        """Build from a suite *name* — how config files express it."""
        try:
            suite = SUITES[suite_name]
        except KeyError:
            raise ValueError(
                f"unknown cipher suite {suite_name!r}; have {sorted(SUITES)}"
            ) from None
        return cls(
            credential=credential,
            trust_anchors=tuple(trust_anchors),
            suite=suite,
            **kwargs,
        )
