"""At-rest cryptographic protection — the paper's §7 future work.

"Our future work will consider building user-level cryptographic
functions into SGFS to ensure the privacy and integrity of data stored
on the servers."  This module implements that extension on the
client-side proxy path: file data is encrypted (and MACed) *before* it
leaves the session, so the file server and its administrators only ever
see ciphertext; reads verify and decrypt on the way back.

Design: a length-preserving per-(file, block) keystream cipher keeps
NFS offsets/sizes intact (the server is oblivious), and a per-block
HMAC-SHA256 is kept in the session's local MAC store — integrity is
detected at the trusting end, which is the only end that matters when
the server itself is the adversary.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, Tuple

import numpy as np

from repro.crypto.hmac import constant_time_equal, hmac_sha256


class AtRestIntegrityError(Exception):
    """Stored data failed MAC verification — server-side tampering."""


class BlockCryptor:
    """Encrypt/verify 32 KB-class blocks keyed per (fileid, block)."""

    def __init__(self, session_key: bytes):
        if len(session_key) < 16:
            raise ValueError("session key too short")
        self._key = session_key
        self._mac_key = hmac_sha256(session_key, b"at-rest-mac")
        #: (fileid, block) -> MAC of the *ciphertext* stored remotely
        self.mac_store: Dict[Tuple[int, int], bytes] = {}

    # -- keystream -------------------------------------------------------

    def _pad(self, fileid: int, block: int, n: int) -> np.ndarray:
        seed = hashlib.sha256(
            self._key + struct.pack(">QQ", fileid, block)
        ).digest()
        rng = np.random.Generator(np.random.PCG64(int.from_bytes(seed[:8], "big")))
        return rng.integers(0, 256, size=n, dtype=np.uint8)

    def _xor(self, fileid: int, block: int, data: bytes) -> bytes:
        pad = self._pad(fileid, block, len(data))
        return np.bitwise_xor(np.frombuffer(data, dtype=np.uint8), pad).tobytes()

    # -- API ---------------------------------------------------------------

    def seal(self, fileid: int, block: int, plaintext: bytes) -> bytes:
        """Encrypt a block for storage; records its MAC locally."""
        ct = self._xor(fileid, block, plaintext)
        self.mac_store[(fileid, block)] = hmac_sha256(
            self._mac_key, struct.pack(">QQ", fileid, block) + ct
        )
        return ct

    def open(self, fileid: int, block: int, ciphertext: bytes) -> bytes:
        """Verify and decrypt a block fetched from the server."""
        expected = self.mac_store.get((fileid, block))
        if expected is not None:
            actual = hmac_sha256(
                self._mac_key, struct.pack(">QQ", fileid, block) + ciphertext
            )
            if not constant_time_equal(actual, expected):
                raise AtRestIntegrityError(
                    f"block ({fileid}, {block}) modified on the server"
                )
        return self._xor(fileid, block, ciphertext)

    def forget_file(self, fileid: int) -> None:
        for key in [k for k in self.mac_store if k[0] == fileid]:
            del self.mac_store[key]
