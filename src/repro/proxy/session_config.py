"""Proxy configuration files with dynamic reload (paper §4.2).

A SGFS proxy is configured through a small key=value text format
covering the security section (cipher suite, certificate names, trusted
CAs, renegotiation timeout) and the cache section (disk caching and its
parameters).  ``SessionConfig.parse`` reads it; ``reload`` re-reads and
reports what changed, which the proxies use to re-key or re-validate a
live session — e.g. after a certificate is rotated.

Example::

    # security
    suite = aes-256-cbc-sha1
    user_cert = alice
    renegotiate_interval = 3600

    # cache
    cache = on
    cache.write_back = on
    cache.block_size = 32768
    cache.capacity = 4294967296
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.proxy.client_proxy import ProxyCacheConfig


class ConfigError(Exception):
    """Malformed proxy configuration text."""


_BOOL = {"on": True, "true": True, "1": True, "off": False, "false": False, "0": False}


def _parse_kv(text: str) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "=" not in line:
            raise ConfigError(f"line {lineno}: expected key = value")
        key, _, value = line.partition("=")
        out[key.strip()] = value.strip()
    return out


@dataclass(frozen=True)
class SessionConfig:
    """Parsed proxy configuration."""

    suite: str = "aes-256-cbc-sha1"
    user_cert: str = ""
    host_cert: str = ""
    trusted_cas: tuple = ()
    renegotiate_interval: Optional[float] = None
    cache: ProxyCacheConfig = field(default_factory=ProxyCacheConfig)
    gridmap: str = ""
    raw: Dict[str, str] = field(default_factory=dict, compare=False)

    @classmethod
    def parse(cls, text: str) -> "SessionConfig":
        kv = _parse_kv(text)

        def get_bool(key: str, default: bool) -> bool:
            v = kv.get(key)
            if v is None:
                return default
            if v.lower() not in _BOOL:
                raise ConfigError(f"{key}: bad boolean {v!r}")
            return _BOOL[v.lower()]

        def get_int(key: str, default: int) -> int:
            v = kv.get(key)
            if v is None:
                return default
            try:
                return int(v)
            except ValueError:
                raise ConfigError(f"{key}: bad integer {v!r}") from None

        reneg = kv.get("renegotiate_interval")
        cache = ProxyCacheConfig(
            enabled=get_bool("cache", False),
            cache_data=get_bool("cache.data", True),
            cache_attrs=get_bool("cache.attrs", True),
            cache_access=get_bool("cache.access", True),
            write_back=get_bool("cache.write_back", True),
            block_size=get_int("cache.block_size", 32768),
            capacity_bytes=get_int("cache.capacity", 4 << 30),
            flush_age=float(kv["cache.flush_age"]) if "cache.flush_age" in kv else None,
        )
        return cls(
            suite=kv.get("suite", "aes-256-cbc-sha1"),
            user_cert=kv.get("user_cert", ""),
            host_cert=kv.get("host_cert", ""),
            trusted_cas=tuple(
                s.strip() for s in kv.get("trusted_cas", "").split(",") if s.strip()
            ),
            renegotiate_interval=float(reneg) if reneg else None,
            cache=cache,
            gridmap=kv.get("gridmap", ""),
            raw=kv,
        )

    def diff(self, other: "SessionConfig") -> Dict[str, tuple]:
        """Fields that changed between two configurations."""
        changes: Dict[str, tuple] = {}
        for name in ("suite", "user_cert", "host_cert", "trusted_cas",
                     "renegotiate_interval", "cache", "gridmap"):
            a, b = getattr(self, name), getattr(other, name)
            if a != b:
                changes[name] = (a, b)
        return changes

    @property
    def requires_renegotiation(self) -> bool:
        return bool(self.user_cert or self.host_cert)
