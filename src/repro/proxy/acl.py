"""Grid-style per-file ACLs (paper §4.3).

Each file or directory may have an ACL file beside it named
``.<name>.acl`` whose lines grant a grid identity an NFS ACCESS bitmask::

    "/C=US/O=UFL/CN=Ming Zhao" rwx
    "/C=US/O=UFL/CN=Guest" r
    deny "/C=US/O=Evil/CN=Mallory"

Semantics implemented exactly as described in the paper:

- a file/directory without its own ACL **inherits its parent's**,
  recursively (reduces management complexity),
- a user found in the ACL gets the listed bits; a user not found gets
  **zero** (all access disabled),
- if *no* ACL exists anywhere up the chain, the decision falls back to
  the gridmap-mapped UNIX permissions (the proxy forwards the ACCESS
  call upstream with mapped credentials),
- ACLs are **cached in memory** by the server-side proxy once read from
  disk, and the ACL files themselves are invisible and inaccessible to
  remote clients.

Bits use the NFSv3 ACCESS bitmask; the shorthand letters map r→READ,
w→MODIFY|EXTEND|DELETE, x→EXECUTE|LOOKUP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.gsi.names import DistinguishedName
from repro.nfs.protocol import (
    ACCESS_DELETE,
    ACCESS_EXECUTE,
    ACCESS_EXTEND,
    ACCESS_LOOKUP,
    ACCESS_MODIFY,
    ACCESS_READ,
)
from repro.vfs.fs import VfsError, VirtualFS

ACL_SUFFIX_FMT = ".{name}.acl"

_LETTER_BITS = {
    "r": ACCESS_READ,
    "w": ACCESS_MODIFY | ACCESS_EXTEND | ACCESS_DELETE,
    "x": ACCESS_EXECUTE | ACCESS_LOOKUP,
}


def acl_name_for(name: str) -> str:
    """The ACL file name protecting directory entry ``name``."""
    return ACL_SUFFIX_FMT.format(name=name)


def is_acl_name(name: str) -> bool:
    return name.startswith(".") and name.endswith(".acl")


class AclError(Exception):
    """Malformed ACL text."""


@dataclass(frozen=True)
class AclEntry:
    dn: str
    bits: int
    deny: bool = False


def _parse_bits(text: str) -> int:
    text = text.strip()
    if text.isdigit():
        return int(text)
    bits = 0
    for ch in text:
        if ch == "-":
            continue
        if ch not in _LETTER_BITS:
            raise AclError(f"unknown permission letter {ch!r}")
        bits |= _LETTER_BITS[ch]
    return bits


def parse_acl_text(text: str) -> List[AclEntry]:
    entries: List[AclEntry] = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        deny = False
        if line.startswith("deny "):
            deny = True
            line = line[5:].strip()
        if not line.startswith('"'):
            raise AclError(f"line {lineno}: DN must be quoted")
        try:
            end = line.index('"', 1)
        except ValueError:
            raise AclError(f"line {lineno}: unterminated quote") from None
        dn_text = line[1:end]
        DistinguishedName.parse(dn_text)  # validate
        rest = line[end + 1 :].strip()
        bits = 0 if deny else _parse_bits(rest)
        entries.append(AclEntry(dn_text, bits, deny))
    return entries


def format_acl(entries: List[AclEntry]) -> str:
    lines = []
    for e in entries:
        if e.deny:
            lines.append(f'deny "{e.dn}"')
        else:
            lines.append(f'"{e.dn}" {e.bits}')
    return "\n".join(lines)


class AclStore:
    """Reads, caches and evaluates ACLs stored in the exported VFS.

    The store walks parent chains for inheritance and memoizes parsed
    ACLs per protecting-file inode, invalidated explicitly when a
    service modifies an ACL through the management interface
    (:meth:`set_acl` / :meth:`remove_acl`, the FSS ``SetAcl`` /
    ``RemoveAcl`` actions).

    Every invalidation — targeted or global — bumps :attr:`epoch`, the
    same versioning discipline as :attr:`repro.gsi.gridmap.Gridmap.epoch`:
    decision caches layered above this store stamp entries with the
    epoch they were computed under and lazily re-resolve when it moves.

    Determinism and units: evaluation is pure data — no clocks, no
    randomness — so same-seed runs make bit-identical decisions.  The
    store itself charges no virtual time; the server proxy charges one
    ACL **disk read** (bytes through the disk model, virtual seconds)
    whenever :attr:`cache_misses` grows during an ACCESS answer, which
    is why hit/miss counts are part of the observable schedule and the
    memo caches here must never change *which* reads miss.
    """

    def __init__(self, fs: VirtualFS, cache_enabled: bool = True):
        self.fs = fs
        #: in-memory ACL caching (§4.3); disable only for ablation study
        self.cache_enabled = cache_enabled
        #: acl-file fileid -> parsed entries
        self._cache: Dict[int, List[AclEntry]] = {}
        #: child fileid -> (parent dir fileid, entry name): O(1) reverse
        #: index for the inheritance walk, verified against the live
        #: directory entry on every use (renames/removes self-heal)
        self._locations: Dict[int, tuple[int, str]] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        #: invalidation counter (see class docstring)
        self.epoch = 0

    # -- plumbing ------------------------------------------------------------

    def _parent_and_name(self, fileid: int) -> Optional[tuple[int, str]]:
        """Locate (parent_dir_fileid, entry_name) for an inode.

        O(1) via the verified reverse index; a full inode scan only on
        first sight of a fileid or after a rename/remove made the
        cached location stale.
        """
        if fileid == self.fs.root.fileid:
            return None
        loc = self._locations.get(fileid)
        if loc is not None:
            parent_id, name = loc
            try:
                parent = self.fs.inode(parent_id)
            except VfsError:
                parent = None
            if (
                parent is not None
                and parent.is_dir
                and parent.entries.get(name) == fileid
            ):
                return loc
            del self._locations[fileid]  # stale: fall through to rescan
        for fid, node in self.fs._inodes.items():
            if node.is_dir:
                for name, child in node.entries.items():
                    if child == fileid:
                        self._locations[fileid] = (fid, name)
                        return fid, name
        return None

    def _read_acl_file(self, acl_fileid: int) -> List[AclEntry]:
        if self.cache_enabled:
            cached = self._cache.get(acl_fileid)
            if cached is not None:
                self.cache_hits += 1
                return cached
        self.cache_misses += 1
        node = self.fs.inode(acl_fileid)
        entries = parse_acl_text(bytes(node.data).decode("utf-8", "replace"))
        if self.cache_enabled:
            self._cache[acl_fileid] = entries
        return entries

    def invalidate(self, acl_fileid: Optional[int] = None) -> None:
        """Drop cached parse results: one ACL file, or everything.

        ``invalidate(None)`` clears the whole memo (reconfiguration);
        ``invalidate(fileid)`` drops just that ACL file's entry
        (targeted, what :meth:`set_acl`/:meth:`remove_acl` use).  Both
        bump :attr:`epoch` — even when nothing was cached — so layered
        decision caches always observe the mutation.
        """
        if acl_fileid is None:
            self._cache.clear()
        else:
            self._cache.pop(acl_fileid, None)
        self.epoch += 1

    # -- evaluation ------------------------------------------------------------

    def acl_for(self, fileid: int) -> Optional[List[AclEntry]]:
        """The effective ACL for an inode, walking inheritance upward.

        Returns None when no ACL protects the object anywhere up the
        chain (caller falls back to UNIX permissions).
        """
        current = fileid
        for _ in range(256):  # depth guard
            loc = self._parent_and_name(current)
            if loc is None:
                # Root directory: it may carry its own ACL as an entry
                # named ".{root}.acl"? The paper anchors ACLs at entries;
                # the root falls back to UNIX permissions.
                return None
            parent_id, name = loc
            parent = self.fs.inode(parent_id)
            acl_id = parent.entries.get(acl_name_for(name))
            if acl_id is not None:
                try:
                    return self._read_acl_file(acl_id)
                except (AclError, VfsError):
                    return []  # unreadable ACL: fail closed
            current = parent_id  # inherit from the parent directory
        return None

    def evaluate(self, fileid: int, dn: DistinguishedName) -> Optional[int]:
        """Granted ACCESS bits for ``dn``, or None for UNIX fallback.

        A user present in the ACL gets the listed bits (deny lines give
        zero); a user absent from a present ACL gets zero.
        """
        entries = self.acl_for(fileid)
        if entries is None:
            return None
        dn_text = str(dn)
        for e in entries:
            if e.dn == dn_text:
                return 0 if e.deny else e.bits
        return 0

    # -- management (used by the DSS/FSS services) ---------------------------------

    def set_acl(self, dir_fileid: int, name: str, entries: List[AclEntry],
                owner_uid: int = 0) -> None:
        """Create/replace the ACL protecting ``name`` in a directory."""
        from repro.vfs.fs import Credentials

        cred = Credentials(owner_uid, owner_uid)
        acl_fname = acl_name_for(name)
        d = self.fs.inode(dir_fileid)
        existing = d.entries.get(acl_fname)
        text = format_acl(entries).encode("utf-8")
        if existing is None:
            node = self.fs.create(dir_fileid, acl_fname, Credentials(0, 0), mode=0o600)
        else:
            node = self.fs.inode(existing)
            self.fs.setattr(node.fileid, Credentials(0, 0), size=0)
        self.fs.write(node.fileid, 0, text, Credentials(0, 0))
        self.invalidate(node.fileid)

    def remove_acl(self, dir_fileid: int, name: str) -> None:
        from repro.vfs.fs import Credentials

        acl_fname = acl_name_for(name)
        d = self.fs.inode(dir_fileid)
        acl_id = d.entries.get(acl_fname)
        if acl_id is not None:
            self.fs.remove(dir_fileid, acl_fname, Credentials(0, 0))
            self.invalidate(acl_id)
