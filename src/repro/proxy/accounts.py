"""Local account database for identity mapping.

The server-side proxy maps an authorized grid user to a local account
(via the gridmap), then rewrites the AUTH_SYS credentials of each RPC to
that account's uid/gid before forwarding to the kernel NFS server
(paper §4.3: the client-side uid/gid "do not represent the grid user's
identity ... but they are still necessary for the identity mapping").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Account:
    name: str
    uid: int
    gid: int
    groups: Tuple[int, ...] = ()


class AccountsDb:
    """A passwd-like table: name -> Account."""

    def __init__(self) -> None:
        self._by_name: Dict[str, Account] = {}
        self._by_uid: Dict[int, Account] = {}
        # Conventional fixtures every host has.
        self.add(Account("root", 0, 0))
        self.add(Account("nobody", 65534, 65534))

    def add(self, account: Account) -> Account:
        if account.name in self._by_name:
            raise ValueError(f"duplicate account {account.name!r}")
        if account.uid in self._by_uid:
            raise ValueError(f"duplicate uid {account.uid}")
        self._by_name[account.name] = account
        self._by_uid[account.uid] = account
        return account

    def ensure(self, name: str, uid: Optional[int] = None, gid: Optional[int] = None) -> Account:
        """Get-or-create (grid deployments allocate accounts on demand)."""
        existing = self._by_name.get(name)
        if existing is not None:
            return existing
        if uid is None:
            uid = (max(self._by_uid) + 1) if self._by_uid else 1000
            uid = max(uid, 1000)
        return self.add(Account(name, uid, gid if gid is not None else uid))

    def lookup(self, name: str) -> Optional[Account]:
        return self._by_name.get(name)

    def lookup_uid(self, uid: int) -> Optional[Account]:
        return self._by_uid.get(uid)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)
