"""SGFS proxies — the paper's primary contribution.

User-level loop-back proxies interposed on the NFS RPC path:

- :mod:`repro.proxy.server_proxy` — the server-side proxy: GSI
  authentication (via the secure transport's peer identity), gridmap and
  per-file ACL authorization, ACCESS-procedure interception, uid/gid
  identity mapping, and forwarding to the kernel NFS server that exports
  only to localhost (Figure 1).
- :mod:`repro.proxy.client_proxy` — the client-side proxy: forwards the
  unmodified kernel client's RPCs to the server-side proxy over a plain,
  SSL-secured, or SSH-tunneled transport, optionally through a disk
  cache with write-back (the WAN story of §6.2.2–6.3).
- :mod:`repro.proxy.acl` — grid-style ACL files (``.filename.acl``)
  with directory inheritance and in-memory caching (§4.3).
- :mod:`repro.proxy.authz` — the epoch-stamped identity→account cache
  the server proxy consults per session (population-scale control
  plane; see docs/CONTROL_PLANE.md).
- :mod:`repro.proxy.accounts` — the local account database used for
  identity mapping.
- :mod:`repro.proxy.session_config` — the proxy configuration file
  (security + cache sections) with dynamic reload (§4.2).
- :mod:`repro.proxy.cryptofs` — at-rest encryption extension (§7
  future work).
"""

from repro.proxy.accounts import AccountsDb, Account
from repro.proxy.acl import AclStore, AclEntry, parse_acl_text, ACL_SUFFIX_FMT, acl_name_for
from repro.proxy.authz import AuthzCache
from repro.proxy.server_proxy import SgfsServerProxy, AuthzDecision
from repro.proxy.client_proxy import SgfsClientProxy, ProxyCacheConfig
from repro.proxy.session_config import SessionConfig

__all__ = [
    "AccountsDb",
    "Account",
    "AclStore",
    "AclEntry",
    "parse_acl_text",
    "ACL_SUFFIX_FMT",
    "acl_name_for",
    "AuthzCache",
    "SgfsServerProxy",
    "AuthzDecision",
    "SgfsClientProxy",
    "ProxyCacheConfig",
    "SessionConfig",
]
