"""Versioned authorization cache for the server-side proxy.

At population scale (the gridmap holds 10^6 DNs, thousands of sessions
churn per virtual minute) the proxy must not pay a fresh gridmap walk
plus accounts-database resolution for every session of every returning
user — but a cache over authorization state is only safe if it can
never serve a decision that a policy mutation has since revoked.

:class:`AuthzCache` solves this with epochs instead of explicit purge
lists: every cached identity→account resolution is stamped with the
:attr:`~repro.gsi.gridmap.Gridmap.epoch` it was computed under.  Each
``add``/``remove`` on the gridmap bumps the epoch, so on the next
lookup a stamped entry no longer matches and is lazily re-resolved —
correct under concurrent fleet mutation without any registration or
callback plumbing between the gridmap and its caches.  Swapping the
whole gridmap object (dynamic reconfiguration, §4.2) invalidates
everything for the same reason: the cache also remembers *which*
gridmap object it resolved against.

Determinism: pure Python dictionaries, no virtual-time cost — caching
only changes wall-clock work, never the simulated schedule, so enabling
it leaves every virtual-time result bit-identical.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.gsi.gridmap import Gridmap
from repro.gsi.names import DistinguishedName
from repro.proxy.accounts import Account, AccountsDb


class AuthzCache:
    """Epoch-stamped identity→account memo for one server proxy.

    ``resolve`` returns the mapped :class:`Account` (or None = deny)
    exactly as the uncached path would; hits, misses, and stale
    re-resolutions are counted for the proxy's stats collector.
    """

    def __init__(self, accounts: AccountsDb):
        self.accounts = accounts
        #: DN string -> (gridmap epoch at resolution, mapped account)
        self._entries: Dict[str, Tuple[int, Optional[Account]]] = {}
        self._gridmap: Optional[Gridmap] = None
        self.hits = 0
        self.misses = 0
        #: entries found but re-resolved because the epoch moved (the
        #: invalidation-correctness counter: mutations land here)
        self.stale = 0

    def resolve(
        self, gridmap: Gridmap, identity: DistinguishedName
    ) -> Optional[Account]:
        """Map ``identity`` through ``gridmap`` with epoch-checked caching.

        Semantics are identical to ``gridmap.lookup`` + accounts
        resolution: None means deny; an unmapped DN under the ANONYMOUS
        policy resolves (and auto-creates, on first use) the anonymous
        account.
        """
        if gridmap is not self._gridmap:
            # Reconfiguration swapped the policy object: nothing cached
            # under the old gridmap may survive.
            self._entries.clear()
            self._gridmap = gridmap
        dn_text = str(identity)
        entry = self._entries.get(dn_text)
        if entry is not None:
            epoch, account = entry
            if epoch == gridmap.epoch:
                self.hits += 1
                return account
            self.stale += 1
        else:
            self.misses += 1
        account = self._resolve_uncached(gridmap, dn_text)
        self._entries[dn_text] = (gridmap.epoch, account)
        return account

    def _resolve_uncached(
        self, gridmap: Gridmap, dn_text: str
    ) -> Optional[Account]:
        account_name = gridmap.lookup_str(dn_text)
        if account_name is None:
            return None
        return self.accounts.lookup(account_name) or self.accounts.ensure(account_name)

    def __len__(self) -> int:
        return len(self._entries)
