"""Client-side SGFS proxy (paper Figure 1 left, §6 "sgfs" setups).

Accepts the unmodified kernel NFS client's connections on localhost and
forwards each RPC to the server-side proxy over a pluggable transport
(plain TCP for *gfs*, the SSL-like channel for *sgfs*, an SSH tunnel for
*gfs-ssh*).  Optionally interposes a **disk cache**:

- attributes, lookups and access results are cached aggressively for
  the lifetime of the session (sessions are per-user/application, so
  the sharing hazards of a shared cache do not apply — §6.1),
- file data is cached in 32 KB blocks on the proxy's disk; hits pay the
  local disk instead of the WAN round trip,
- writes are absorbed **write-back**: the proxy answers WRITE locally,
  keeps the dirty blocks, and writes back on COMMIT, on eviction, and
  at session teardown (:meth:`SgfsClientProxy.writeback`) — which is
  how Seismic's temporary files never cross the WAN (§6.3.2) and why
  the paper reports the end-of-run write-back time separately.

This write-back relaxation is safe precisely because an SGFS session is
dedicated to a single user/job; multi-writer sharing uses the overlay
consistency protocols of [46] (out of scope, see DESIGN.md).
"""

from __future__ import annotations

import itertools
import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.nfs import protocol as pr
from repro.obs import NULL_SPAN
from repro.nfs.protocol import Fattr3, FileHandle, NfsStatus, Proc
from repro.rpc.auth import NULL_AUTH
from repro.rpc.compound import (
    COMPOUND_EXEC,
    COMPOUND_PROGRAM,
    COMPOUND_VERSION,
    pack_members,
    unpack_members,
)
from repro.rpc.costs import CostProfile, FREE_PROFILE, charge_profile
from repro.rpc.drc import DuplicateRequestCache, REPLAY, WAIT, drc_key
from repro.rpc.errors import RpcError, RpcTimeout, RpcTransportError
from repro.rpc.messages import CallMessage, ReplyMessage
from repro.rpc.transport import StreamTransport, Transport
from repro.sim.core import Event, Simulator
from repro.sim.process import all_of, any_of
from repro.sim.sync import Gate
from repro.vfs.disk import DiskModel
from repro.xdr import Packer

#: NFS procedures that must not re-execute on a duplicate request.
_NFS_NON_IDEMPOTENT = frozenset(int(p) for p in pr.NON_IDEMPOTENT_PROCS)

#: bulk data procedures — the traffic round-robined across sub-channels
_BULK_PROCS = frozenset((int(pr.Proc.READ), int(pr.Proc.WRITE)))

#: EWMA gain for the per-session RTT estimators (RFC 6298's 1/8)
_RTT_ALPHA = 0.125
#: floor on the bulk-minus-small service-time estimate (virtual seconds)
#: so a leg whose bulk calls are barely slower than its control calls
#: cannot demand an unbounded window
_RTT_FLOOR = 1e-4
#: pipeline-window cap when --pipeline-depth is not given
DEFAULT_PIPELINE_DEPTH = 64


@dataclass
class ProxyCacheConfig:
    """The cache section of a proxy configuration file (§4.2)."""

    enabled: bool = False
    cache_data: bool = True
    cache_attrs: bool = True
    cache_access: bool = True
    write_back: bool = True
    block_size: int = 32768
    capacity_bytes: int = 4 << 30
    #: background flush of dirty blocks older than this (None = only on
    #: COMMIT/eviction/teardown)
    flush_age: Optional[float] = None
    #: cache-consistency protocol overlaying NFS's (the paper defers
    #: multi-user sharing to the authors' application-tailored
    #: consistency work [46]):
    #:   "session" — aggressive: entries valid for the session lifetime
    #:               (the paper's single-user/job assumption, default),
    #:   "poll"    — entries older than ``consistency_ttl`` revalidate
    #:               against the server (GETATTR; mtime change drops
    #:               cached data) — bounded staleness for shared data.
    consistency: str = "session"
    consistency_ttl: float = 5.0

    def __post_init__(self) -> None:
        if self.consistency not in ("session", "poll"):
            raise ValueError(f"unknown consistency mode {self.consistency!r}")


@dataclass
class _Block:
    data: bytes
    dirty: bool = False
    dirtied_at: float = 0.0


class _CallRouter:
    """Matches forwarded calls to upstream replies by our own xids.

    The xid source is external (shared by the proxy across router
    generations) so a call retried on a replacement router keeps its
    original rewritten xid — which is what lets the server-side proxy's
    duplicate-request cache recognize the retry.
    """

    def __init__(
        self,
        sim: Simulator,
        transport: Transport,
        xid_source: Optional[Callable[[], int]] = None,
    ):
        self.sim = sim
        self.transport = transport
        self._pending: Dict[int, Event] = {}
        if xid_source is None:
            xid_source = itertools.count(0x7000_0001).__next__
        self.allocate_xid = xid_source
        self.retransmissions = 0
        #: set when the pump dies; new forwards fail fast so the
        #: recovery loop replaces the router instead of sending into a
        #: connection nobody reads from anymore
        self._dead: Optional[RpcError] = None
        #: armed by quiesce(): fires when the pending table empties
        self._drain_ev: Optional[Event] = None
        sim.spawn(self._pump(), name="cproxy-pump")

    def forward(self, call: CallMessage, timeout: Optional[float] = None,
                retrans: int = 0):
        """Process generator: send a call upstream, return ReplyMessage."""
        xid = self.allocate_xid()
        rewritten = CallMessage(
            xid, call.prog, call.vers, call.proc, call.cred, call.verf, call.args
        )
        reply = yield from self.forward_record(
            xid, rewritten.encode(), timeout=timeout, retrans=retrans
        )
        return reply

    def forward_record(self, xid: int, record: bytes,
                       timeout: Optional[float] = None, retrans: int = 0):
        """Send an already-encoded call and await the matching reply.

        With ``timeout`` set, the identical record is retransmitted up
        to ``retrans`` times on a doubling timer before
        :class:`RpcTimeout` is raised."""
        if self._dead is not None:
            raise RpcTransportError(f"upstream is dead: {self._dead}")
        ev = self.sim.event(name=f"fw:{xid}")
        self._pending[xid] = ev
        t = timeout
        sent = 0
        while True:
            try:
                if hasattr(self.transport, "charge"):
                    yield from self.transport.charge(len(record))
                self.transport.send_record(record)
            except RpcError:
                self._pending.pop(xid, None)
                raise
            except Exception as exc:
                self._pending.pop(xid, None)
                raise RpcTransportError(f"upstream send failed: {exc}") from exc
            if t is None:
                reply: ReplyMessage = yield ev
                return reply
            idx, value = yield any_of(self.sim, [ev, self.sim.timeout(t)])
            if idx == 0:
                return value
            if sent >= retrans:
                self._pending.pop(xid, None)
                raise RpcTimeout(
                    f"no upstream reply for xid={xid:#x} "
                    f"after {sent + 1} transmissions"
                )
            sent += 1
            self.retransmissions += 1
            t *= 2.0

    def _pump(self):
        try:
            while True:
                record = yield from self.transport.recv_record()
                if record is None:
                    break
                try:
                    reply = ReplyMessage.decode(record)
                except RpcError:
                    continue
                ev = self._pending.pop(reply.xid, None)
                if ev is not None:
                    ev.succeed(reply)
                if not self._pending and self._drain_ev is not None:
                    self._drain_ev.succeed(None)
        except Exception as exc:
            self._fail_all(RpcError(f"upstream transport failed: {exc}"))
            return
        self._fail_all(RpcError("upstream closed"))

    def _fail_all(self, err: RpcError) -> None:
        self._dead = err
        pending, self._pending = self._pending, {}
        for ev in pending.values():
            ev.fail(err)
        if self._drain_ev is not None:
            self._drain_ev.succeed(None)
            self._drain_ev = None

    def quiesce(self, timeout: float):
        """Process generator: wait for in-flight calls to finish (bounded).

        Used by graceful session replacement: the retiring connection
        stays open until its outstanding replies arrive, so cycling a
        healthy session does not turn live calls into retry storms."""
        if not self._pending:
            return
        self._drain_ev = self.sim.event(name="rt-drain")
        yield any_of(self.sim, [self._drain_ev, self.sim.timeout(timeout)])
        self._drain_ev = None


class _SubChannel:
    """One extra WAN sub-channel of an :class:`UpstreamSession`.

    Channel 0 lives in the session's historical ``transport``/``router``
    fields; channels 1..N-1 each hold their own transport + router pair
    (sharing the session's rewritten-xid stream) and their own reconnect
    gate, so a dead sub-channel fails over independently."""

    __slots__ = ("transport", "router", "reconnecting")

    def __init__(self) -> None:
        self.transport: Optional[Transport] = None
        self.router: Optional[_CallRouter] = None
        self.reconnecting: Optional[Event] = None


class UpstreamSession:
    """One recoverable proxy-to-server leg: transport + router + retry.

    Extracted from :class:`SgfsClientProxy` so the striped data plane
    (:mod:`repro.grid`) can hold one leg per backend server while the
    single-server proxy keeps exactly one.  The leg owns the rewritten
    xid stream (shared across router generations so the upstream DRC
    recognizes retries), the reconnect gate, and the backoff budget.

    With ``streams > 1`` the leg becomes a DotDFS-style parallel
    transfer pipe: N concurrent sub-channels (each its own TCP socket +
    TLS record stream, dialed sequentially so ticket resumption chains
    the session keys), with bulk READ/WRITE traffic round-robined
    across channels and everything else pinned to channel 0.  All
    channels draw xids from the one shared stream, so the server-side
    DRC recognizes a retry no matter which channel carries it.
    """

    def __init__(
        self,
        sim: Simulator,
        upstream_factory: Callable[[], "object"],
        stats: Optional[dict] = None,
        timeo: Optional[float] = None,
        retrans: int = 2,
        retry_max: int = 5,
        retry_base: float = 0.5,
        retry_backoff: float = 2.0,
        retry_cap: float = 10.0,
        streams: int = 1,
        name: str = "up",
    ):
        self.sim = sim
        self.upstream_factory = upstream_factory
        #: counter sink — the owning proxy shares its stats dict so
        #: ``upstream_retries`` lands in the proxy.client collector
        self.stats = stats if stats is not None else {}
        #: reply timeout / same-record retransmission budget per attempt
        #: (None = wait forever, the historical mode)
        self.timeo = timeo
        self.retrans = retrans
        #: reconnect-and-retry budget when the leg fails
        self.retry_max = retry_max
        self.retry_base = retry_base
        self.retry_backoff = retry_backoff
        self.retry_cap = retry_cap
        self.transport: Optional[Transport] = None
        self.router: Optional[_CallRouter] = None
        #: rewritten-xid source, shared across router generations so a
        #: retried call keeps its xid (the upstream DRC keys on it)
        self._fwd_xids = itertools.count(0x7000_0001)
        #: in-progress upstream reconnect (Event), if any
        self._reconnecting: Optional[Event] = None
        #: parallel sub-channel count; channels 1..N-1 live in _subs
        self.streams = max(1, int(streams))
        self.name = name
        self._subs: List[_SubChannel] = [
            _SubChannel() for _ in range(self.streams - 1)
        ]
        #: round-robin cursor for bulk READ/WRITE traffic
        self._rr_bulk = 0
        #: smoothed RTT estimators (virtual seconds, deterministic):
        #: small control RPCs approximate the raw round trip, bulk block
        #: RPCs add the per-block service time — their gap sizes the
        #: pipeline window (see :meth:`window`)
        self.srtt_small: Optional[float] = None
        self.srtt_bulk: Optional[float] = None

    def connect(self):
        """Process generator: establish the transport(s), start the pumps.

        Extra sub-channels dial strictly one after another: each
        handshake deposits a fresh session ticket in the client's
        single-slot store, so channel k+1 resumes the keys channel k
        negotiated and the dial order — hence the whole run — stays
        deterministic."""
        self.transport = yield from self.upstream_factory()
        self.router = _CallRouter(
            self.sim, self.transport, xid_source=self._fwd_xids.__next__
        )
        for sub in self._subs:
            sub.transport = yield from self.upstream_factory()
            sub.router = _CallRouter(
                self.sim, sub.transport, xid_source=self._fwd_xids.__next__
            )
        return self

    def close(self) -> None:
        for transport in [self.transport] + [s.transport for s in self._subs]:
            if transport is not None:
                try:
                    transport.close()
                except Exception:
                    pass

    def _router_for(self, channel: int) -> Optional[_CallRouter]:
        return self.router if channel == 0 else self._subs[channel - 1].router

    def _pick_channel(self, call: CallMessage) -> int:
        """Deterministic channel selection: bulk READ/WRITE round-robins
        across the sub-channels in issue order; everything else (the
        metadata stream, whose ordering matters) stays on channel 0."""
        if self.streams == 1:
            return 0
        if call.prog == pr.NFS_PROGRAM and call.proc in _BULK_PROCS:
            channel = self._rr_bulk % self.streams
            self._rr_bulk += 1
            return channel
        return 0

    def _observe_rtt(self, bulk: bool, sample: float) -> None:
        if bulk:
            prev = self.srtt_bulk
            self.srtt_bulk = (
                sample if prev is None else prev + _RTT_ALPHA * (sample - prev)
            )
        else:
            prev = self.srtt_small
            self.srtt_small = (
                sample if prev is None else prev + _RTT_ALPHA * (sample - prev)
            )

    def window(self, cap: int) -> int:
        """RTT-sized pipeline depth for this leg: how many bulk blocks
        should be in flight to hide one round trip (GridFTP-style
        pipelining, window = RTT / per-block service time).

        Both estimators are virtual-time EWMAs fed by the leg's own
        forwarded calls, so the same seed always sizes the same windows;
        until both have a sample the window is one block — the
        historical stop-and-wait behavior."""
        if self.srtt_small is None or self.srtt_bulk is None:
            return 1
        service = max(self.srtt_bulk - self.srtt_small, _RTT_FLOOR)
        return max(1, min(cap, math.ceil(self.srtt_small / service)))

    def _note_stream(self, channel: int, nbytes: int) -> None:
        calls_key = f"stream_calls{{leg={self.name},ch={channel}}}"
        bytes_key = f"stream_bytes{{leg={self.name},ch={channel}}}"
        self.stats[calls_key] = self.stats.get(calls_key, 0) + 1
        self.stats[bytes_key] = self.stats.get(bytes_key, 0) + nbytes

    def forward(self, call: CallMessage, channel: Optional[int] = None):
        """Forward upstream, surviving timeouts and transport death.

        The rewritten xid and encoded record are fixed once, so every
        retransmission — including those sent over a *replacement*
        connection after the server-side proxy restarts — is the same
        request to the upstream DRC, which replays rather than
        re-executes non-idempotent procedures.  ``channel`` pins the
        call to a specific sub-channel; by default bulk traffic
        round-robins and control traffic rides channel 0."""
        assert self.router is not None
        if channel is None:
            channel = self._pick_channel(call)
        xid = self.router.allocate_xid()
        rewritten = CallMessage(
            xid, call.prog, call.vers, call.proc, call.cred, call.verf, call.args
        )
        record = rewritten.encode()
        bulk = call.prog == pr.NFS_PROGRAM and call.proc in _BULK_PROCS
        started = self.sim.now
        failures = 0
        while True:
            router = self._router_for(channel)
            try:
                reply = yield from router.forward_record(
                    xid,
                    record,
                    timeout=self.timeo,
                    retrans=self.retrans,
                )
                self._observe_rtt(bulk, self.sim.now - started)
                if self.streams > 1:
                    self._note_stream(channel, len(record))
                return reply
            except RpcError:
                failures += 1
                if failures > self.retry_max:
                    raise
                self.stats["upstream_retries"] = (
                    self.stats.get("upstream_retries", 0) + 1
                )
                yield self.sim.timeout(
                    min(
                        self.retry_cap,
                        self.retry_base
                        * self.retry_backoff ** (failures - 1),
                    )
                )
                yield from self._ensure_channel(channel, router)

    def forward_batch(self, calls: List[CallMessage], channel: int = 0):
        """Process generator: many calls, one compound round trip.

        Member xids are allocated and the member records encoded exactly
        once, *before* the envelope first goes out: a retransmitted
        envelope replays byte-identical members, so the server-side DRC
        recognizes every member of every retransmission.  Returns one
        ``Optional[ReplyMessage]`` per member, in call order (``None``
        when the server could not decode or answer that member)."""
        assert self.router is not None
        if not calls:
            return []
        members = []
        for call in calls:
            xid = self.router.allocate_xid()
            members.append(
                CallMessage(
                    xid, call.prog, call.vers, call.proc,
                    call.cred, call.verf, call.args,
                ).encode()
            )
        env_xid = self.router.allocate_xid()
        envelope = CallMessage(
            env_xid, COMPOUND_PROGRAM, COMPOUND_VERSION, COMPOUND_EXEC,
            args=pack_members(members),
        ).encode()
        failures = 0
        while True:
            router = self._router_for(channel)
            try:
                reply = yield from router.forward_record(
                    env_xid, envelope,
                    timeout=self.timeo, retrans=self.retrans,
                )
                break
            except RpcError:
                failures += 1
                if failures > self.retry_max:
                    raise
                self.stats["upstream_retries"] = (
                    self.stats.get("upstream_retries", 0) + 1
                )
                yield self.sim.timeout(
                    min(
                        self.retry_cap,
                        self.retry_base
                        * self.retry_backoff ** (failures - 1),
                    )
                )
                yield from self._ensure_channel(channel, router)
        if self.streams > 1:
            self._note_stream(channel, len(envelope))
        self.stats["compound_envelopes"] = (
            self.stats.get("compound_envelopes", 0) + 1
        )
        self.stats["compound_members"] = (
            self.stats.get("compound_members", 0) + len(calls)
        )
        reply.raise_for_status()
        out: List[Optional[ReplyMessage]] = []
        for record in unpack_members(reply.results):
            if not record:
                out.append(None)
                continue
            try:
                out.append(ReplyMessage.decode(record))
            except RpcError:
                out.append(None)
        return out

    def _ensure_channel(self, channel: int, failed_router: _CallRouter):
        """Process generator: replace a dead sub-channel connection —
        channel 0 through the historical :meth:`ensure` gate, extra
        channels through their own per-channel gates."""
        if channel == 0:
            yield from self.ensure(failed_router)
            return
        sub = self._subs[channel - 1]
        if sub.router is not failed_router:
            return  # another caller already replaced it
        if sub.reconnecting is not None:
            yield sub.reconnecting
            return
        gate = sub.reconnecting = self.sim.event(
            name=f"cproxy-reconnect-ch{channel}"
        )
        try:
            try:
                upstream = yield from self.upstream_factory()
            except Exception:
                return  # server proxy still down; caller backs off
            old = sub.transport
            sub.transport = upstream
            sub.router = _CallRouter(
                self.sim, upstream, xid_source=self._fwd_xids.__next__
            )
            if old is not None:
                try:
                    old.close()
                except Exception:
                    pass
        finally:
            sub.reconnecting = None
            gate.succeed(None)

    def ensure(self, failed_router: _CallRouter):
        """Replace a dead upstream connection, at most one attempt at a
        time across all concurrent callers.

        A failed attempt returns (the caller's backoff loop retries
        within its own budget) rather than looping here, so total
        patience is governed by ``retry_max``."""
        if self.router is not failed_router:
            return  # another caller already replaced it
        if self._reconnecting is not None:
            yield self._reconnecting
            return
        gate = self._reconnecting = self.sim.event(name="cproxy-reconnect")
        try:
            try:
                upstream = yield from self.upstream_factory()
            except Exception:
                return  # server proxy still down; caller backs off
            old = self.transport
            self.transport = upstream
            self.router = _CallRouter(
                self.sim, upstream, xid_source=self._fwd_xids.__next__
            )
            if old is not None:
                try:
                    old.close()
                except Exception:
                    pass
        finally:
            self._reconnecting = None
            gate.succeed(None)

    def cycle(self):
        """Process generator: proactively tear down and re-establish the
        upstream session (operator-driven reconnects: proxy restarts,
        credential rollover, periodic session refresh).

        The new connection handshakes *before* the old one closes, so
        in-flight calls either complete on the old transport or fail
        over through their normal retry path.  With session tickets
        enabled the replacement handshake resumes abbreviated."""
        if self._reconnecting is not None:
            yield self._reconnecting
            return
        gate = self._reconnecting = self.sim.event(name="cproxy-cycle")
        try:
            try:
                upstream = yield from self.upstream_factory()
            except Exception:
                return  # server proxy down; keep the session we have
            old, self.transport = self.transport, upstream
            old_router, self.router = self.router, _CallRouter(
                self.sim, upstream, xid_source=self._fwd_xids.__next__
            )
            if old_router is not None:
                # New calls already go to the replacement session; let
                # in-flight replies land on the old one before closing.
                yield from old_router.quiesce(timeout=1.0)
            if old is not None:
                try:
                    old.close()
                except Exception:
                    pass
            if old_router is not None:
                # A locally-closed socket never wakes its own reader, so
                # the old pump can't fail leftovers itself: anything
                # still unanswered fails over to the new session now.
                old_router._fail_all(RpcError("upstream session cycled"))
            # Extra sub-channels cycle the same way, strictly in channel
            # order (sequential dials keep ticket chaining deterministic).
            for sub in self._subs:
                try:
                    upstream = yield from self.upstream_factory()
                except Exception:
                    continue  # keep this sub-channel's current session
                old, sub.transport = sub.transport, upstream
                old_router, sub.router = sub.router, _CallRouter(
                    self.sim, upstream, xid_source=self._fwd_xids.__next__
                )
                if old_router is not None:
                    yield from old_router.quiesce(timeout=1.0)
                if old is not None:
                    try:
                        old.close()
                    except Exception:
                        pass
                if old_router is not None:
                    old_router._fail_all(RpcError("upstream session cycled"))
        finally:
            self._reconnecting = None
            gate.succeed(None)


class SgfsClientProxy:
    """The client-side proxy process."""

    def __init__(
        self,
        sim: Simulator,
        host,
        listen_port: int,
        upstream_factory: Optional[Callable[[], "object"]] = None,
        cost: CostProfile = FREE_PROFILE,
        account: str = "proxy",
        cache: Optional[ProxyCacheConfig] = None,
        disk: Optional[DiskModel] = None,
        blocking: bool = True,
        cryptor=None,
        upstream_timeo: Optional[float] = None,
        upstream_retrans: int = 2,
        upstream_retry_max: int = 5,
        upstream_retry_base: float = 0.5,
        upstream_retry_backoff: float = 2.0,
        upstream_retry_cap: float = 10.0,
        streams: int = 1,
        pipeline_depth: Optional[int] = None,
        grid=None,
    ):
        """``upstream_factory()`` is a process generator returning a
        connected Transport to the server-side proxy (this is where the
        gfs / sgfs / gfs-ssh variants differ).

        ``cryptor`` (a :class:`repro.proxy.cryptofs.BlockCryptor`)
        enables at-rest protection: every block is sealed before it
        leaves the session and verified+opened when fetched back, so the
        file server only ever stores ciphertext (§7 future work).
        Requires ``cache.enabled`` with ``write_back`` — the block cache
        is what aligns all data movement to sealable units.

        ``grid`` (a :class:`repro.grid.GridRouter`) replaces the single
        upstream leg with a striped multi-backend data plane: the router
        owns one :class:`UpstreamSession` per backend server and fans
        block I/O out according to the metadata service's layout.  The
        proxy's ``_upstream``/``upstream_timeo`` views then refer to the
        home (namespace) leg."""
        self.sim = sim
        self.host = host
        self.listen_port = listen_port
        self.upstream_factory = upstream_factory
        self.cost = cost
        self.account = account
        self.cache = cache or ProxyCacheConfig()
        self.disk = disk
        self.blocking = blocking
        self.cryptor = cryptor
        if cryptor is not None and not (
            (cache or ProxyCacheConfig()).enabled
            and (cache or ProxyCacheConfig()).write_back
        ):
            raise ValueError(
                "at-rest protection requires the disk cache with write-back"
            )
        self.grid = grid
        self.streams = max(1, int(streams))
        self.pipeline_depth = pipeline_depth
        #: the WAN transfer engine — windowed read-ahead/write-behind,
        #: compound envelopes, parallel sub-channels.  Strictly opt-in:
        #: at the defaults (streams=1, no pipeline depth) every code
        #: path below is byte-identical to the historical proxy.
        self._engine = self.streams > 1 or pipeline_depth is not None
        #: blocks currently being fetched by a read window, so a second
        #: reader coalesces onto the in-flight fetch instead of
        #: duplicating it (keyed (fileid, block))
        self._inflight_reads: Dict[Tuple[int, int], Event] = {}
        if grid is not None:
            #: home (namespace) leg: leg 0 of the grid router
            self._leg = grid.legs[0]
        else:
            self._leg = UpstreamSession(
                sim, upstream_factory,
                timeo=upstream_timeo, retrans=upstream_retrans,
                retry_max=upstream_retry_max, retry_base=upstream_retry_base,
                retry_backoff=upstream_retry_backoff,
                retry_cap=upstream_retry_cap,
                streams=self.streams,
            )
        self._listener = None
        #: duplicate-request cache for the kernel client's leg: the
        #: proxy rewrites xids upstream, so each serving hop needs its
        #: own DRC for exactly-once semantics of non-idempotent calls
        self._drc = DuplicateRequestCache(sim, name=f"cproxy:{listen_port}")
        #: closed while a configuration reload is being applied (§4.2);
        #: in-flight calls finish, new ones wait at the gate.
        self._serving = Gate(sim, open=True, name="cproxy-serving")

        # --- session-lifetime caches -------------------------------------
        self._attrs: Dict[int, Fattr3] = {}
        #: when each attr entry was last validated against the server
        self._attr_time: Dict[int, float] = {}
        self._handles: Dict[int, FileHandle] = {}
        self._lookups: Dict[Tuple[int, str], Tuple[FileHandle, int]] = {}
        self._access: Dict[Tuple[int, int], int] = {}
        self._blocks: "OrderedDict[Tuple[int, int], _Block]" = OrderedDict()
        self._cache_bytes = 0
        self._dirty: Dict[int, set] = {}  # fileid -> set of dirty block idx
        #: the session's AUTH_SYS credential, captured from client calls
        #: and reused for write-back WRITEs the proxy originates itself
        self._session_cred = None

        # --- statistics ----------------------------------------------------
        self.obs = sim.obs
        self.tracer = sim.tracer
        if self.obs.enabled:
            # the stats dict stays the source of truth; the registry
            # polls it at snapshot time (pull collector, zero hot-path cost)
            self.obs.add_collector("proxy.client", lambda: dict(self.stats))
        self.stats = {
            "local_replies": 0,
            "forwarded": 0,
            "data_hits": 0,
            "data_misses": 0,
            "attr_hits": 0,
            "writes_absorbed": 0,
            "writeback_blocks": 0,
            "writeback_bytes": 0,
            "writeback_errors": 0,
            "blocks_sealed": 0,
            "blocks_opened": 0,
            "revalidations": 0,
            "revalidation_drops": 0,
        }
        for leg in self._all_legs():
            leg.stats = self.stats

    # -- upstream leg views --------------------------------------------------
    # The recovery machinery lives in UpstreamSession; these properties
    # keep the proxy's historical surface (tests and the fault harness
    # read _upstream / set upstream_timeo directly).

    def _all_legs(self):
        return self.grid.legs if self.grid is not None else [self._leg]

    @property
    def _upstream(self) -> Optional[Transport]:
        return self._leg.transport

    @property
    def _router(self) -> Optional[_CallRouter]:
        return self._leg.router

    @property
    def upstream_timeo(self) -> Optional[float]:
        return self._leg.timeo

    @upstream_timeo.setter
    def upstream_timeo(self, value: Optional[float]) -> None:
        for leg in self._all_legs():
            leg.timeo = value

    @property
    def upstream_retrans(self) -> int:
        return self._leg.retrans

    @upstream_retrans.setter
    def upstream_retrans(self, value: int) -> None:
        for leg in self._all_legs():
            leg.retrans = value

    @property
    def upstream_retry_max(self) -> int:
        return self._leg.retry_max

    @upstream_retry_max.setter
    def upstream_retry_max(self, value: int) -> None:
        for leg in self._all_legs():
            leg.retry_max = value

    # -- lifecycle ------------------------------------------------------------

    def start(self):
        """Process generator: connect upstream, then start accepting."""
        if self.grid is not None:
            yield from self.grid.connect()
        else:
            yield from self._leg.connect()
        self._listener = self.host.listen(self.listen_port)
        self.sim.spawn(self._accept_loop(), name=f"sgfs-cproxy:{self.listen_port}")
        if self.cache.enabled and self.cache.flush_age is not None:
            self.sim.spawn(self._age_flusher(), name="cproxy-flush")
        return self

    def stop(self) -> None:
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    def _accept_loop(self):
        while self._listener is not None and not self._listener.closed:
            try:
                sock = yield self._listener.accept()
            except Exception:
                return
            self.sim.spawn(self._connection(sock), name="cproxy-conn")

    def _connection(self, sock):
        transport = StreamTransport(sock)
        while True:
            try:
                record = yield from transport.recv_record()
            except Exception:
                return
            if record is None:
                return
            if self.blocking:
                yield from self._serve(transport, record)
            else:
                self.sim.spawn(self._serve(transport, record), name="cproxy-call")

    # -- disk cache timing -----------------------------------------------------

    def _disk_read(self, nbytes: int):
        if self.disk is not None:
            yield from self.disk.read(nbytes, cached=False)
        return
        yield  # pragma: no cover

    def _disk_write(self, nbytes: int):
        if self.disk is not None:
            yield from self.disk.write(nbytes, sync=False)
        return
        yield  # pragma: no cover

    # -- cache bookkeeping --------------------------------------------------------

    def _remember_attr(self, fh: Optional[FileHandle], attr: Optional[Fattr3]) -> None:
        if attr is None or not self.cache.cache_attrs:
            return
        if self._dirty.get(attr.fileid):
            # The file has unflushed local writes: the server's view of
            # size/mtime is stale by design.  Keep the shadow values.
            old = self._attrs.get(attr.fileid)
            if old is not None:
                attr = Fattr3(
                    ftype=attr.ftype, mode=attr.mode, nlink=attr.nlink,
                    uid=attr.uid, gid=attr.gid,
                    size=max(old.size, attr.size),
                    used=max(old.used, attr.used),
                    fsid=attr.fsid, fileid=attr.fileid,
                    atime=attr.atime,
                    mtime=max(old.mtime, attr.mtime),
                    ctime=max(old.ctime, attr.ctime),
                )
        self._attrs[attr.fileid] = attr
        self._attr_time[attr.fileid] = self.sim.now
        if fh is not None:
            self._handles[attr.fileid] = fh

    def _block_put(self, fileid: int, block: int, data: bytes, dirty: bool):
        key = (fileid, block)
        old = self._blocks.pop(key, None)
        if old is not None:
            self._cache_bytes -= len(old.data)
            if old.dirty:
                dirty = True
        self._blocks[key] = _Block(data, dirty, self.sim.now)
        self._cache_bytes += len(data)
        if dirty:
            self._dirty.setdefault(fileid, set()).add(block)
        yield from self._disk_write(len(data))
        if self._engine:
            # LRU eviction, write-behind flavor: once over capacity,
            # evict down to a low-water mark (capacity minus one
            # window of blocks) so dirty victims accumulate into one
            # RTT-sized burst instead of one WAN round trip per
            # inserted block.  Dirty marks are cleared up front, same
            # hazard as below.
            victims = []
            if self._cache_bytes > self.cache.capacity_bytes:
                spare = (self._window() - 1) * self.cache.block_size
                target = max(self.cache.capacity_bytes - spare,
                             self.cache.capacity_bytes // 2)
                while self._cache_bytes > target and len(self._blocks) > 1:
                    vkey, vblock = next(iter(self._blocks.items()))
                    if vkey == key:
                        break
                    del self._blocks[vkey]
                    self._cache_bytes -= len(vblock.data)
                    if vblock.dirty:
                        self._dirty.get(vkey[0], set()).discard(vkey[1])
                        victims.append((vkey[0], vkey[1], vblock.data))
            yield from self._writeback_window(victims)
            return
        # LRU eviction; dirty victims are written back first.
        while self._cache_bytes > self.cache.capacity_bytes and len(self._blocks) > 1:
            vkey, vblock = next(iter(self._blocks.items()))
            if vkey == key:
                break
            del self._blocks[vkey]
            self._cache_bytes -= len(vblock.data)
            if vblock.dirty:
                # Clear the dirty mark *before* yielding to the (slow)
                # writeback: a writer that re-dirties this block while
                # the WRITE is in flight must not have its mark wiped
                # out afterwards, or the new data would never flush.
                self._dirty.get(vkey[0], set()).discard(vkey[1])
                yield from self._writeback_block(vkey[0], vkey[1], vblock.data)

    def _block_get(self, fileid: int, block: int):
        key = (fileid, block)
        entry = self._blocks.get(key)
        if entry is None:
            return None
        self._blocks.move_to_end(key)
        yield from self._disk_read(len(entry.data))
        return entry.data

    def _maybe_revalidate(self, fh: FileHandle):
        """Process generator: under "poll" consistency, refresh a stale
        cache entry from the server; returns the current attrs (or None).

        A changed mtime/size drops the file's cached blocks — the
        bounded-staleness overlay of [46] on top of NFS semantics.
        Files with local dirty data are ours by definition and skip
        revalidation (their shadow attrs are authoritative).
        """
        attr = self._attrs.get(fh.fileid)
        if attr is None or self.cache.consistency != "poll":
            return attr
        if self._dirty.get(fh.fileid):
            return attr
        age = self.sim.now - self._attr_time.get(fh.fileid, -1e18)
        if age <= self.cache.consistency_ttl:
            return attr
        call = CallMessage(
            0, pr.NFS_PROGRAM, pr.NFS_V3, int(Proc.GETATTR),
            cred=self._session_cred if self._session_cred is not None else NULL_AUTH,
            args=pr.pack_getattr_args(fh),
        )
        self.stats["revalidations"] += 1
        reply = yield from self._forward_with_recovery(call)
        try:
            status, fresh = pr.unpack_getattr_res(reply.results)
        except Exception:
            return attr
        if status != NfsStatus.OK or fresh is None:
            self._attrs.pop(fh.fileid, None)
            return None
        if fresh.mtime != attr.mtime or fresh.size != attr.size:
            # someone else changed the file: drop our stale data
            self.stats["revalidation_drops"] += 1
            for key in [k for k in self._blocks if k[0] == fh.fileid]:
                if not self._blocks[key].dirty:
                    self._cache_bytes -= len(self._blocks[key].data)
                    del self._blocks[key]
        self._attrs[fh.fileid] = fresh
        self._attr_time[fh.fileid] = self.sim.now
        return fresh

    def _drop_file(self, fileid: int) -> None:
        for key in [k for k in self._blocks if k[0] == fileid]:
            self._cache_bytes -= len(self._blocks[key].data)
            del self._blocks[key]
        self._dirty.pop(fileid, None)
        self._attrs.pop(fileid, None)

    # -- serving ------------------------------------------------------------------

    def _serve(self, transport: Transport, record: bytes):
        yield self._serving.wait()
        cpu = self.host.cpu
        yield from charge_profile(self.sim, cpu, self.cost, len(record), self.account)
        try:
            call = CallMessage.decode(record)
        except Exception:
            return
        key = None
        if call.prog == pr.NFS_PROGRAM and call.proc in _NFS_NON_IDEMPOTENT:
            key = drc_key(call)
            state, value = self._drc.check(key)
            if state == WAIT:
                cached = yield value
                if cached is not None:
                    yield from self._reply_cached(transport, cpu, cached)
                    return
                # original execution aborted; we run the call ourselves
            elif state == REPLAY:
                yield from self._reply_cached(transport, cpu, value)
                return
        with self.tracer.span("proxy.serve", cat="proxy", prog=call.prog,
                              proc=call.proc) if self.tracer.enabled else NULL_SPAN:
            try:
                reply = yield from self._handle(call)
            except BaseException:
                if key is not None:
                    self._drc.abort(key)
                raise
        encoded = reply.encode()
        if key is not None:
            self._drc.complete(key, encoded)
        yield from charge_profile(self.sim, cpu, self.cost, len(encoded), self.account)
        try:
            transport.send_record(encoded)
        except Exception:
            pass

    def _reply_cached(self, transport: Transport, cpu, encoded: bytes):
        yield from charge_profile(self.sim, cpu, self.cost, len(encoded), self.account)
        try:
            transport.send_record(encoded)
        except Exception:
            pass

    def _forward(self, call: CallMessage):
        self.stats["forwarded"] += 1
        reply = yield from self._forward_with_recovery(call)
        reply.xid = call.xid
        return reply

    def _forward_with_recovery(self, call: CallMessage):
        """Forward upstream with retry/reconnect; grid-routed when the
        striped data plane is attached (see :class:`UpstreamSession`)."""
        if self.grid is not None:
            return (yield from self.grid.forward(call))
        return (yield from self._leg.forward(call))

    def cycle_upstream(self):
        """Process generator: proactively tear down and re-establish the
        upstream session(s) — every backend leg in index order when the
        grid data plane is attached (see :meth:`UpstreamSession.cycle`)."""
        for leg in self._all_legs():
            yield from leg.cycle()

    def _handle(self, call: CallMessage):
        if call.cred.flavor != 0:
            self._session_cred = call.cred
        if call.prog != pr.NFS_PROGRAM or not self.cache.enabled:
            return (yield from self._forward(call))
        proc = call.proc
        handler = {
            int(Proc.GETATTR): self._h_getattr,
            int(Proc.LOOKUP): self._h_lookup,
            int(Proc.ACCESS): self._h_access,
            int(Proc.READ): self._h_read,
            int(Proc.WRITE): self._h_write,
            int(Proc.COMMIT): self._h_commit,
            int(Proc.SETATTR): self._h_setattr,
            int(Proc.CREATE): self._h_create,
            int(Proc.MKDIR): self._h_create,
            int(Proc.SYMLINK): self._h_create,
            int(Proc.REMOVE): self._h_remove,
            int(Proc.RMDIR): self._h_remove,
            int(Proc.RENAME): self._h_rename,
        }.get(proc)
        if handler is None:
            return (yield from self._forward(call))
        return (yield from handler(call))

    # -- attribute & name procedures ---------------------------------------------------

    def _h_getattr(self, call: CallMessage):
        fh = pr.unpack_getattr_args(call.args)
        attr = yield from self._maybe_revalidate(fh)
        if attr is not None:
            self.stats["attr_hits"] += 1
            self.stats["local_replies"] += 1
            yield from self._disk_read(256)  # attrs live in the disk cache
            return ReplyMessage(
                xid=call.xid, results=pr.pack_getattr_res(NfsStatus.OK, attr)
            )
        reply = yield from self._forward(call)
        if reply.results:
            try:
                status, got = pr.unpack_getattr_res(reply.results)
                if status == NfsStatus.OK:
                    self._remember_attr(fh, got)
                    merged = self._attrs.get(fh.fileid)
                    if merged is not None and merged is not got:
                        # dirty file: answer with the shadow view
                        reply.results = pr.pack_getattr_res(status, merged)
            except Exception:
                pass
        return reply

    def _h_lookup(self, call: CallMessage):
        dir_fh, name = pr.unpack_lookup_args(call.args)
        hit = self._lookups.get((dir_fh.fileid, name))
        if hit is not None:
            fh, fileid = hit
            attr = self._attrs.get(fileid)
            dir_attr = self._attrs.get(dir_fh.fileid)
            if attr is not None:
                self.stats["local_replies"] += 1
                yield from self._disk_read(256)
                return ReplyMessage(
                    xid=call.xid,
                    results=pr.pack_lookup_res(NfsStatus.OK, fh, attr, dir_attr),
                )
        reply = yield from self._forward(call)
        try:
            status, fh, attr, dir_attr = pr.unpack_lookup_res(reply.results)
            if status == NfsStatus.OK and fh is not None and attr is not None:
                self._remember_attr(fh, attr)
                self._remember_attr(dir_fh, dir_attr)
                self._lookups[(dir_fh.fileid, name)] = (fh, attr.fileid)
                merged = self._attrs.get(attr.fileid)
                if merged is not None and merged is not attr:
                    reply.results = pr.pack_lookup_res(
                        status, fh, merged, self._attrs.get(dir_fh.fileid) or dir_attr
                    )
        except Exception:
            pass
        return reply

    def _h_access(self, call: CallMessage):
        fh, want = pr.unpack_access_args(call.args)
        if self.cache.cache_access:
            cached = self._access.get((fh.fileid, 0))
            if cached is not None:
                attr = self._attrs.get(fh.fileid)
                self.stats["local_replies"] += 1
                yield from self._disk_read(128)
                return ReplyMessage(
                    xid=call.xid,
                    results=pr.pack_access_res(NfsStatus.OK, attr, cached & want),
                )
        # Ask for all bits so one round trip answers future queries too.
        full = CallMessage(
            call.xid, call.prog, call.vers, call.proc, call.cred, call.verf,
            pr.pack_access_args(fh, pr.ACCESS_ALL),
        )
        reply = yield from self._forward(full)
        try:
            status, attr, granted = pr.unpack_access_res(reply.results)
            if status == NfsStatus.OK:
                self._remember_attr(fh, attr)
                if self.cache.cache_access:
                    self._access[(fh.fileid, 0)] = granted
                merged = self._attrs.get(fh.fileid) or attr
                reply.results = pr.pack_access_res(status, merged, granted & want)
        except Exception:
            pass
        return reply

    # -- data procedures -------------------------------------------------------------

    def _h_read(self, call: CallMessage):
        fh, offset, count = pr.unpack_read_args(call.args)
        bs = self.cache.block_size
        if not self.cache.cache_data or offset % bs or count > bs:
            return (yield from self._forward(call))
        block = offset // bs
        yield from self._maybe_revalidate(fh)
        data = yield from self._block_get(fh.fileid, block)
        if data is not None:
            self.stats["data_hits"] += 1
            self.stats["local_replies"] += 1
            attr = self._attrs.get(fh.fileid)
            size = attr.size if attr is not None else offset + len(data)
            chunk = data[:count]
            eof = offset + len(chunk) >= size
            return ReplyMessage(
                xid=call.xid,
                results=pr.pack_read_res(NfsStatus.OK, attr, chunk, eof),
            )
        self.stats["data_misses"] += 1
        if self._engine:
            return (yield from self._read_window(call, fh, block, count))
        # Fetch the whole block regardless of the requested count.
        fetch = CallMessage(
            call.xid, call.prog, call.vers, call.proc, call.cred, call.verf,
            pr.pack_read_args(fh, block * bs, bs),
        )
        reply = yield from self._forward(fetch)
        try:
            status, attr, data, eof = pr.unpack_read_res(reply.results)
            if status == NfsStatus.OK:
                if self.cryptor is not None and data:
                    from repro.proxy.cryptofs import AtRestIntegrityError

                    try:
                        data = self.cryptor.open(fh.fileid, block, data)
                        self.stats["blocks_opened"] += 1
                    except AtRestIntegrityError:
                        # server-side tampering: surface an I/O error
                        return ReplyMessage(
                            xid=call.xid,
                            results=pr.pack_read_res(NfsStatus.IO, attr),
                        )
                self._remember_attr(fh, attr)
                yield from self._block_put(fh.fileid, block, data, dirty=False)
                chunk = data[:count]
                reply.results = pr.pack_read_res(
                    status, attr, chunk, eof or (len(data) <= count and eof)
                )
        except Exception:
            pass
        return reply

    # -- the WAN transfer engine (streams > 1 or an explicit pipeline
    # depth) -------------------------------------------------------------

    def _window(self) -> int:
        cap = (
            self.pipeline_depth
            if self.pipeline_depth is not None
            else DEFAULT_PIPELINE_DEPTH
        )
        return max(leg.window(cap) for leg in self._all_legs())

    def _read_window(self, call: CallMessage, fh: FileHandle, block: int,
                     count: int):
        """Process generator: windowed read-ahead for a block-cache miss.

        Fetches the demanded block plus up to window-1 sequential
        successors in one burst.  Determinism rules: target blocks are
        chosen in ascending order, fetches are issued in that order
        (grid: one in-flight call per block, striped by the router;
        single server: blocks round-robin into one compound envelope
        per sub-channel, spawned in channel order), the joins happen in
        spawn order, and results are installed in ascending block order
        — reply arrival order never influences cache state."""
        bs = self.cache.block_size
        key = (fh.fileid, block)
        pending = self._inflight_reads.get(key)
        if pending is not None:
            # another reader's window already has this block in flight
            yield pending
            data = yield from self._block_get(fh.fileid, block)
            if data is not None:
                self.stats["data_hits"] += 1
                self.stats["local_replies"] += 1
                attr = self._attrs.get(fh.fileid)
                size = attr.size if attr is not None else block * bs + len(data)
                chunk = data[:count]
                return ReplyMessage(
                    xid=call.xid,
                    results=pr.pack_read_res(
                        NfsStatus.OK, attr, chunk, block * bs + len(chunk) >= size
                    ),
                )
        wanted = [block]
        attr = self._attrs.get(fh.fileid)
        if attr is not None:
            last_block = (attr.size + bs - 1) // bs - 1
            for nxt in range(block + 1, min(block + self._window(),
                                            last_block + 1)):
                if (fh.fileid, nxt) in self._blocks:
                    continue
                if (fh.fileid, nxt) in self._inflight_reads:
                    continue
                wanted.append(nxt)
        fetches = []
        for b in wanted:
            self._inflight_reads[(fh.fileid, b)] = self.sim.event(
                name=f"rdwin:{fh.fileid}:{b}"
            )
            fetches.append((b, CallMessage(
                call.xid, call.prog, call.vers, call.proc, call.cred,
                call.verf, pr.pack_read_args(fh, b * bs, bs),
            )))
        demanded = None        # parsed (status, attr, data, eof) for `block`
        demanded_reply = None  # raw ReplyMessage for `block`
        self.stats["forwarded"] += len(fetches)
        try:
            replies = yield from self._issue_bulk(fetches)
            for (b, _fetch), reply in zip(fetches, replies):
                if reply is None:
                    continue
                if b == block:
                    demanded_reply = reply
                try:
                    status, rattr, data, eof = pr.unpack_read_res(reply.results)
                except Exception:
                    continue
                if status != NfsStatus.OK:
                    if b == block:
                        demanded = (status, rattr, b"", False)
                    continue
                if self.cryptor is not None and data:
                    from repro.proxy.cryptofs import AtRestIntegrityError

                    try:
                        data = self.cryptor.open(fh.fileid, b, data)
                        self.stats["blocks_opened"] += 1
                    except AtRestIntegrityError:
                        if b == block:
                            demanded = (NfsStatus.IO, rattr, b"", False)
                        continue
                self._remember_attr(fh, rattr)
                if data:
                    yield from self._block_put(fh.fileid, b, data, dirty=False)
                if b == block:
                    demanded = (status, self._attrs.get(fh.fileid) or rattr,
                                data, eof)
        finally:
            # waiters always wake, even when the fetch failed — they
            # re-check the cache and fall back to their own fetch
            for b in wanted:
                ev = self._inflight_reads.pop((fh.fileid, b), None)
                if ev is not None and not ev.triggered:
                    ev.succeed(None)
        if demanded is not None:
            status, rattr, data, eof = demanded
            if status != NfsStatus.OK:
                return ReplyMessage(
                    xid=call.xid, results=pr.pack_read_res(status, rattr)
                )
            chunk = data[:count]
            return ReplyMessage(
                xid=call.xid,
                results=pr.pack_read_res(status, rattr, chunk, eof),
            )
        if demanded_reply is not None:
            # mirrored from the historical path: an unparseable upstream
            # reply is passed through unmodified
            demanded_reply.xid = call.xid
            return demanded_reply
        # the window fetch never produced a reply for the demanded
        # block; fall back to the historical single fetch
        fetch = CallMessage(
            call.xid, call.prog, call.vers, call.proc, call.cred, call.verf,
            pr.pack_read_args(fh, block * bs, bs),
        )
        return (yield from self._forward(fetch))

    def _issue_bulk(self, fetches):
        """Process generator: issue a burst of bulk calls, return one
        Optional[ReplyMessage] per call in issue order.

        Spawn order, channel grouping, and the join order are all
        functions of the (deterministic) input list — completion order
        never leaks into the result."""
        calls = [c for _b, c in fetches]
        if self.grid is not None:
            procs = [
                self.sim.spawn(self.grid.forward(c), name=f"bulk:{b}")
                for b, c in fetches
            ]
            replies = yield all_of(self.sim, procs)
            return list(replies)
        leg = self._leg
        groups: List[List[int]] = [[] for _ in range(leg.streams)]
        for i in range(len(calls)):
            groups[i % leg.streams].append(i)
        replies: List[Optional[ReplyMessage]] = [None] * len(calls)
        spawned = []
        for ch, idxs in enumerate(groups):
            if not idxs:
                continue
            if len(idxs) == 1:
                # a single call needs no envelope (and single calls are
                # what feeds the bulk RTT estimator)
                gen = leg.forward(calls[idxs[0]], channel=ch)
            else:
                gen = leg.forward_batch([calls[i] for i in idxs], channel=ch)
            spawned.append((idxs, self.sim.spawn(gen, name=f"bulk-ch{ch}")))
        results = yield all_of(self.sim, [p for _idxs, p in spawned])
        for (idxs, _p), res in zip(spawned, results):
            if len(idxs) == 1:
                replies[idxs[0]] = res
            else:
                for i, r in zip(idxs, res):
                    replies[i] = r
        return replies

    def _writeback_window(self, items):
        """Process generator: write back ``(fileid, block, data)`` items
        in RTT-sized bursts (the write-behind half of the engine).

        Items are sealed and issued in list order; statuses are
        consumed in the same order, so accounting is independent of
        reply arrival."""
        if not items:
            return
        start = 0
        while start < len(items):
            # re-sized per burst: the first burst of a cold session runs
            # at window 1 and seeds the bulk RTT estimator, widening the
            # bursts that follow it
            window = self._window()
            burst = items[start:start + window]
            start += len(burst)
            calls = []
            kept = []
            for fileid, blk, data in burst:
                fh = self._handles.get(fileid)
                if fh is None:
                    continue
                if self.cryptor is not None and data:
                    data = self.cryptor.seal(fileid, blk, data)
                    self.stats["blocks_sealed"] += 1
                kept.append((fileid, blk))
                calls.append(CallMessage(
                    0, pr.NFS_PROGRAM, pr.NFS_V3, int(Proc.WRITE),
                    cred=(self._session_cred
                          if self._session_cred is not None else NULL_AUTH),
                    args=pr.pack_write_args(
                        fh, blk * self.cache.block_size, data, pr.FILE_SYNC
                    ),
                ))
            if not calls:
                continue
            replies = yield from self._issue_bulk(
                list(zip([blk for _f, blk in kept], calls))
            )
            for reply in replies:
                try:
                    status, _after, nwritten, _cm, _v = pr.unpack_write_res(
                        reply.results
                    )
                except Exception:
                    status, nwritten = -1, 0
                if status == NfsStatus.OK:
                    self.stats["writeback_blocks"] += 1
                    self.stats["writeback_bytes"] += nwritten
                else:
                    self.stats["writeback_errors"] += 1

    def _h_write(self, call: CallMessage):
        fh, offset, stable, payload = pr.unpack_write_args(call.args)
        bs = self.cache.block_size
        if not self.cache.write_back:
            reply = yield from self._forward(call)
            try:
                status, after, _c, _cm, _v = pr.unpack_write_res(reply.results)
                if status == NfsStatus.OK:
                    self._remember_attr(fh, after)
            except Exception:
                pass
            return reply
        # Absorb at any offset: split the payload into block spans and
        # merge each over whatever the cache already holds.
        pos = offset
        view = memoryview(payload)
        while view.nbytes > 0:
            block = pos // bs
            inner = pos - block * bs
            take = min(bs - inner, view.nbytes)
            existing = yield from self._block_get(fh.fileid, block)
            if existing is None and inner > 0:
                # partial block with unknown prefix: zero-fill (the kernel
                # client only produces this beyond the old EOF)
                existing = b""
            merged = bytearray(existing or b"")
            if len(merged) < inner + take:
                merged.extend(b"\x00" * (inner + take - len(merged)))
            merged[inner : inner + take] = view[:take].tobytes()
            yield from self._block_put(fh.fileid, block, bytes(merged), dirty=True)
            pos += take
            view = view[take:]
        self.stats["writes_absorbed"] += 1
        self.stats["local_replies"] += 1
        attr = self._shadow_write_attr(fh, offset + len(payload))
        return ReplyMessage(
            xid=call.xid,
            results=pr.pack_write_res(
                NfsStatus.OK, attr, len(payload), pr.FILE_SYNC, b"sgfsprox"
            ),
        )

    def _shadow_write_attr(self, fh: FileHandle, end: int) -> Optional[Fattr3]:
        attr = self._attrs.get(fh.fileid)
        if attr is None:
            attr = Fattr3(
                ftype=1, mode=0o644, nlink=1, uid=0, gid=0, size=0, used=0,
                fsid=fh.fsid, fileid=fh.fileid, atime=self.sim.now,
                mtime=self.sim.now, ctime=self.sim.now,
            )
        new = Fattr3(
            ftype=attr.ftype, mode=attr.mode, nlink=attr.nlink, uid=attr.uid,
            gid=attr.gid, size=max(attr.size, end), used=max(attr.used, end),
            fsid=attr.fsid, fileid=attr.fileid, atime=attr.atime,
            mtime=self.sim.now, ctime=self.sim.now,
        )
        self._attrs[fh.fileid] = new
        self._handles[fh.fileid] = fh
        return new

    def _h_commit(self, call: CallMessage):
        fh, _off, _cnt = pr.unpack_commit_args(call.args)
        if self.cache.write_back:
            # Write-back absorbs durability: the data ages out to the
            # server on eviction/teardown, not at every client COMMIT —
            # the single-user-session relaxation the paper's WAN results
            # (and its separately-reported write-back times) rest on.
            self.stats["local_replies"] += 1
            attr = self._attrs.get(fh.fileid)
            return ReplyMessage(
                xid=call.xid,
                results=pr.pack_commit_res(NfsStatus.OK, attr, b"sgfsprox"),
            )
            yield  # pragma: no cover
        yield from self._flush_file(fh)
        reply = yield from self._forward(call)
        try:
            status, after, _verf = pr.unpack_commit_res(reply.results)
            if status == NfsStatus.OK:
                self._remember_attr(fh, after)
        except Exception:
            pass
        return reply

    def _h_setattr(self, call: CallMessage):
        fh, sattr = pr.unpack_setattr_args(call.args)
        if sattr.size is not None:
            self._drop_file(fh.fileid)
        reply = yield from self._forward(call)
        try:
            status, after = pr.unpack_setattr_res(reply.results)
            if status == NfsStatus.OK:
                self._remember_attr(fh, after)
        except Exception:
            pass
        return reply

    def _h_create(self, call: CallMessage):
        reply = yield from self._forward(call)
        try:
            status, fh, attr, _dir_after = pr.unpack_create_res(reply.results)
            if status == NfsStatus.OK and fh is not None and attr is not None:
                self._remember_attr(fh, attr)
                dir_fh, name = pr.unpack_diropargs_prefix(call.args)
                self._lookups[(dir_fh.fileid, name)] = (fh, attr.fileid)
        except Exception:
            pass
        return reply

    def _h_remove(self, call: CallMessage):
        dir_fh, name = pr.unpack_remove_args(call.args)
        hit = self._lookups.pop((dir_fh.fileid, name), None)
        if hit is not None:
            # Dirty data of a deleted file is never written back — the
            # Seismic §6.3.2 "only final results cross the WAN" effect.
            self._drop_file(hit[1])
            if self.cryptor is not None:
                self.cryptor.forget_file(hit[1])
        self._attrs.pop(dir_fh.fileid, None)
        return (yield from self._forward(call))

    def _h_rename(self, call: CallMessage):
        f_dir, f_name, t_dir, t_name = pr.unpack_rename_args(call.args)
        self._lookups.pop((f_dir.fileid, f_name), None)
        self._lookups.pop((t_dir.fileid, t_name), None)
        self._attrs.pop(f_dir.fileid, None)
        self._attrs.pop(t_dir.fileid, None)
        return (yield from self._forward(call))

    # -- write-back ---------------------------------------------------------------------

    def _writeback_block(self, fileid: int, block: int, data: bytes):
        fh = self._handles.get(fileid)
        if fh is None:
            return
        if self.cryptor is not None and data:
            data = self.cryptor.seal(fileid, block, data)
            self.stats["blocks_sealed"] += 1
        call = CallMessage(
            0, pr.NFS_PROGRAM, pr.NFS_V3, int(Proc.WRITE),
            cred=self._session_cred if self._session_cred is not None else NULL_AUTH,
            args=pr.pack_write_args(fh, block * self.cache.block_size, data, pr.FILE_SYNC),
        )
        reply = yield from self._forward_with_recovery(call)
        try:
            status, _after, count, _cm, _v = pr.unpack_write_res(reply.results)
        except Exception:
            status, count = -1, 0
        if status == NfsStatus.OK:
            self.stats["writeback_blocks"] += 1
            self.stats["writeback_bytes"] += count
        else:
            self.stats["writeback_errors"] += 1

    def _flush_file(self, fh: FileHandle):
        dirty = sorted(self._dirty.pop(fh.fileid, set()))
        if self._engine:
            items = []
            for block in dirty:
                entry = self._blocks.get((fh.fileid, block))
                if entry is None or not entry.dirty:
                    continue
                entry.dirty = False
                yield from self._disk_read(len(entry.data))
                items.append((fh.fileid, block, entry.data))
            yield from self._writeback_window(items)
            return
        for block in dirty:
            entry = self._blocks.get((fh.fileid, block))
            if entry is None or not entry.dirty:
                continue
            entry.dirty = False
            yield from self._disk_read(len(entry.data))
            yield from self._writeback_block(fh.fileid, block, entry.data)

    def writeback(self):
        """Flush every dirty block — session teardown.

        Returns (blocks, bytes) written back; the harness times this to
        reproduce the paper's separately-reported write-back cost.
        """
        before_blocks = self.stats["writeback_blocks"]
        before_bytes = self.stats["writeback_bytes"]
        with self.tracer.span("proxy.writeback",
                              cat="proxy") if self.tracer.enabled else NULL_SPAN:
            if self._engine:
                # Window the flush across files, not just within one:
                # teardown after a many-small-files workload (PostMark,
                # MAB) is otherwise one WAN round trip per file.
                items = []
                for fileid in list(self._dirty.keys()):
                    fh = self._handles.get(fileid)
                    if fh is None:
                        self._dirty.pop(fileid, None)
                        continue
                    for block in sorted(self._dirty.pop(fileid, set())):
                        entry = self._blocks.get((fileid, block))
                        if entry is None or not entry.dirty:
                            continue
                        entry.dirty = False
                        yield from self._disk_read(len(entry.data))
                        items.append((fileid, block, entry.data))
                yield from self._writeback_window(items)
            else:
                for fileid in list(self._dirty.keys()):
                    fh = self._handles.get(fileid)
                    if fh is None:
                        self._dirty.pop(fileid, None)
                        continue
                    yield from self._flush_file(fh)
        return (
            self.stats["writeback_blocks"] - before_blocks,
            self.stats["writeback_bytes"] - before_bytes,
        )

    # -- dynamic reconfiguration (§4.2) ----------------------------------------

    def reload_config(self, cache: Optional[ProxyCacheConfig] = None,
                      rekey: bool = False):
        """Process generator: apply a configuration reload to the live
        session.

        Serving pauses at the gate while the change lands: the cache
        section is swapped (disabling the cache flushes dirty data
        first so nothing is stranded), and ``rekey`` forces an SSL
        renegotiation — the signal used when a certificate is rotated
        or a long-lived session's keys should be refreshed.
        """
        self._serving.close()
        try:
            if cache is not None:
                if not cache.enabled or not cache.write_back:
                    yield from self.writeback()
                self.cache = cache
            if rekey and hasattr(self._upstream, "renegotiate"):
                self._upstream.renegotiate()
        finally:
            self._serving.open()

    @property
    def dirty_bytes(self) -> int:
        return sum(
            len(self._blocks[(f, b)].data)
            for f, blocks in self._dirty.items()
            for b in blocks
            if (f, b) in self._blocks
        )

    def _age_flusher(self):
        age = self.cache.flush_age
        while self._listener is not None:
            yield self.sim.timeout(age)
            cutoff = self.sim.now - age
            for fileid in list(self._dirty.keys()):
                fh = self._handles.get(fileid)
                if fh is None:
                    continue
                old = [
                    b for b in self._dirty.get(fileid, set())
                    if (fileid, b) in self._blocks
                    and self._blocks[(fileid, b)].dirtied_at <= cutoff
                ]
                for block in sorted(old):
                    entry = self._blocks[(fileid, block)]
                    if entry.dirty:
                        entry.dirty = False
                        self._dirty[fileid].discard(block)
                        yield from self._writeback_block(fileid, block, entry.data)
