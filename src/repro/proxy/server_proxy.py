"""Server-side SGFS proxy (paper §4.2–4.3, Figure 1).

Sits between the WAN-facing transport and a kernel NFS server that
exports only to localhost.  For every session it:

1. **authenticates** the peer — for secure sessions the TLS-like
   handshake yields the grid user's certificate; the proxy resolves
   proxy-certificate delegation to the base identity;
2. **authorizes** via the session gridmap (identity → local account) and
   grid ACLs: ACCESS calls are answered from ``.name.acl`` files with
   directory inheritance and an in-memory ACL cache; objects with no ACL
   fall back to mapped-UNIX permission checks upstream;
3. **maps identities**: the AUTH_SYS uid/gid the client-side account
   stamped on each call are rewritten to the mapped local account;
4. **protects ACL files** from remote access: lookups of ``.x.acl``
   names answer NOENT, mutations answer ACCES, and directory listings
   are filtered;
5. forwards the (possibly rewritten) call to the kernel server and
   relays the reply, charging user-level processing CPU both ways —
   the measurable overhead of Figs. 4–6.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.gsi.gridmap import Gridmap
from repro.gsi.names import DistinguishedName
from repro.gsi.proxy import effective_identity
from repro.nfs import protocol as pr
from repro.obs import NULL_SPAN
from repro.nfs.protocol import FileHandle, Fattr3, NfsStatus, Proc
from repro.proxy.accounts import Account, AccountsDb
from repro.proxy.acl import AclStore, is_acl_name
from repro.proxy.authz import AuthzCache
from repro.rpc.auth import AUTH_SYS, AuthSys
from repro.rpc.client import RpcClient
from repro.rpc.compound import COMPOUND_PROGRAM, pack_members, unpack_members
from repro.rpc.costs import CostProfile, FREE_PROFILE, charge_profile
from repro.rpc.drc import DuplicateRequestCache, REPLAY, WAIT, drc_key
from repro.rpc.messages import (
    AUTH_REJECTEDCRED,
    AUTH_TOOWEAK,
    CallMessage,
    ReplyMessage,
    denied_reply,
)
from repro.rpc.transport import StreamTransport, Transport
from repro.sim.core import Simulator
from repro.tls.channel import (
    HandshakeError,
    SessionTicketCache,
    server_handshake,
)
from repro.tls.config import SecurityConfig
from repro.vfs.fs import VirtualFS

#: NFS procedures that must not re-execute on a duplicate request.
_NFS_NON_IDEMPOTENT = frozenset(int(p) for p in pr.NON_IDEMPOTENT_PROCS)


class AuthzDecision:
    """Statistics bucket for authorization outcomes."""

    def __init__(self) -> None:
        self.granted = 0
        self.denied = 0
        self.acl_answers = 0
        self.unix_fallbacks = 0


class SgfsServerProxy:
    """One exported filesystem's server-side proxy."""

    def __init__(
        self,
        sim: Simulator,
        host,
        listen_port: int,
        nfs_server_port: int,
        accounts: AccountsDb,
        gridmap: Gridmap,
        fs: VirtualFS,
        security: Optional[SecurityConfig] = None,
        cost: CostProfile = FREE_PROFILE,
        account: str = "proxy",
        blocking: bool = True,
        enable_acls: bool = True,
        session_identity: Optional[DistinguishedName] = None,
        acl_cache_enabled: bool = True,
        acl_disk=None,
    ):
        self.sim = sim
        self.host = host
        self.listen_port = listen_port
        self.nfs_server_port = nfs_server_port
        self.accounts = accounts
        self.gridmap = gridmap
        self.fs = fs
        self.security = security
        self.cost = cost
        self.account = account
        self.blocking = blocking
        self.enable_acls = enable_acls
        #: identity assumed for *insecure* (plain GFS) sessions, standing
        #: in for the session-key authentication of the prior system.
        self.session_identity = session_identity
        self.acl_disk = acl_disk
        self.acls = AclStore(fs, cache_enabled=acl_cache_enabled)
        #: versioned identity→account cache: entries are stamped with
        #: the gridmap epoch, so ``add``/``remove`` (and gridmap swaps
        #: via :meth:`reload`) invalidate them correctly — population
        #: scale without a gridmap walk per returning session.
        self.authz = AuthzCache(accounts)
        self.stats = AuthzDecision()
        self.calls_forwarded = 0
        self._listener = None
        self._reload_pending = False
        #: duplicate-request cache, keyed on the *pre-remap* credential
        #: (the client's identity).  It lives on the proxy object, not
        #: the session, modeling a reply cache that survives a proxy
        #: restart — a retried non-idempotent call over the replacement
        #: session replays instead of re-executing.
        self._drc = DuplicateRequestCache(sim, name=f"sproxy:{listen_port}")
        #: raw sockets of live sessions, for crash injection
        self._session_socks: list = []
        #: per-session affinity assignment: session k's record crypto is
        #: pinned to core k % N of a multi-core host, spreading distinct
        #: sessions' cipher streams across the pool deterministically.
        self._session_seq = itertools.count()
        #: TLS session-ticket cache (resumption); in-memory only — a
        #: crash flushes it and reconnects fall back to full handshakes.
        self.tickets: Optional[SessionTicketCache] = None
        if security is not None and security.session_tickets:
            self.tickets = SessionTicketCache(
                sim, rng=security.rng, lifetime=security.ticket_lifetime
            )
        self.obs = sim.obs
        self.tracer = sim.tracer
        if self.obs.enabled:
            self.obs.add_collector(
                "proxy.server",
                lambda: {
                    "granted": self.stats.granted,
                    "denied": self.stats.denied,
                    "acl_answers": self.stats.acl_answers,
                    "unix_fallbacks": self.stats.unix_fallbacks,
                    "calls_forwarded": self.calls_forwarded,
                    "authz_cache_hits": self.authz.hits,
                    "authz_cache_misses": self.authz.misses,
                    "authz_cache_stale": self.authz.stale,
                },
            )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._listener = self.host.listen(self.listen_port)
        self.sim.spawn(self._accept_loop(), name=f"sgfs-srvproxy:{self.listen_port}")

    def stop(self) -> None:
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    def crash(self) -> None:
        """Crash injection: stop accepting and sever every live session.

        The DRC and authorization state survive (the reply cache models
        stable storage); clients reconnect and retried calls replay."""
        self.stop()
        if self.tickets is not None:
            self.tickets.flush()
        socks, self._session_socks = self._session_socks, []
        for sock in socks:
            try:
                sock.abort()
            except Exception:
                pass

    def restart(self) -> None:
        """Come back up after :meth:`crash` — rebind and accept again."""
        self.start()

    def reload(self, security: Optional[SecurityConfig] = None,
               gridmap: Optional[Gridmap] = None) -> None:
        """Dynamic reconfiguration (§4.2): applies to new sessions and
        signals established ones to renegotiate."""
        if security is not None:
            self.security = security
        if gridmap is not None:
            self.gridmap = gridmap
        self._reload_pending = True

    def _accept_loop(self):
        while self._listener is not None and not self._listener.closed:
            try:
                sock = yield self._listener.accept()
            except Exception:
                return
            self.sim.spawn(self._session(sock), name="sgfs-session")

    # -- per-session ---------------------------------------------------------

    def _session(self, sock):
        self._session_socks.append(sock)
        try:
            yield from self._session_body(sock)
        finally:
            if sock in self._session_socks:
                self._session_socks.remove(sock)

    def _session_body(self, sock):
        cpu = self.host.cpu
        if self.obs.enabled:
            self.obs.counter("proxy.server", "sessions").inc()
        if self.security is not None:
            try:
                transport: Transport = yield from server_handshake(
                    self.sim, sock, self.security, cpu=cpu, account=self.account,
                    ticket_cache=self.tickets,
                )
            except HandshakeError:
                if self.obs.enabled:
                    self.obs.counter("proxy.server", "handshake_failures").inc()
                sock.abort()
                return
            if self.obs.enabled:
                self.obs.counter("proxy.server", "handshakes").inc()
            # Pin this session's record crypto to one core of the pool.
            transport.affinity = next(self._session_seq)
            identity = effective_identity(transport.peer_identity)
        else:
            transport = StreamTransport(sock)
            identity = self.session_identity
        mapped = self._map_identity(identity)

        # Upstream connection to the kernel NFS server on localhost.
        upstream_sock = yield from self.host.connect(self.host.name, self.nfs_server_port)
        upstream = RpcClient(
            self.sim, StreamTransport(upstream_sock), pr.NFS_PROGRAM, pr.NFS_V3
        )
        try:
            while True:
                record = yield from transport.recv_record()
                if record is None:
                    return
                if self.blocking:
                    yield from self._serve(transport, upstream, record, identity, mapped)
                else:
                    self.sim.spawn(
                        self._serve(transport, upstream, record, identity, mapped),
                        name="sgfs-call",
                    )
        finally:
            upstream.close()
            transport.close()

    def _map_identity(self, identity: Optional[DistinguishedName]) -> Optional[Account]:
        """Session authorization: identity → local account, or None = deny.

        Served from the epoch-stamped :class:`AuthzCache`; a gridmap
        ``add``/``remove`` or :meth:`reload` since the last resolution
        forces a fresh lookup.  Pure wall-clock work — charges no
        virtual time, so caching never perturbs the schedule.
        """
        if identity is None:
            return None
        return self.authz.resolve(self.gridmap, identity)

    # -- per-call --------------------------------------------------------------

    def _serve(self, transport, upstream: RpcClient, record: bytes,
               identity: Optional[DistinguishedName], mapped: Optional[Account]):
        cpu = self.host.cpu
        # Inbound crypto cost was charged inside transport.recv_record();
        # here we charge the user-level RPC processing itself.
        yield from charge_profile(self.sim, cpu, self.cost, len(record), self.account)
        try:
            call = CallMessage.decode(record)
        except Exception:
            return  # garbage on the wire: drop
        if call.prog == COMPOUND_PROGRAM:
            yield from self._serve_compound(
                transport, upstream, call, identity, mapped
            )
            return
        encoded = yield from self._execute_call(upstream, call, identity, mapped)
        yield from charge_profile(self.sim, cpu, self.cost, len(encoded), self.account)
        yield from self._send_reply(transport, encoded)

    def _execute_call(self, upstream: RpcClient, call: CallMessage,
                      identity: Optional[DistinguishedName],
                      mapped: Optional[Account]):
        """Process generator: DRC + authorize + forward exactly one call;
        returns the encoded reply record.  Transport charges stay with
        the caller — a compound envelope charges once for the whole
        batch, which is the round-trip amortization the engine is for."""
        key = None
        if call.prog == pr.NFS_PROGRAM and call.proc in _NFS_NON_IDEMPOTENT:
            # keyed on the pre-remap credential: the duplicate carries
            # the same client identity/xid whichever session (or
            # sub-channel, or envelope) it rode in on
            key = drc_key(call)
            state, value = self._drc.check(key)
            if state == WAIT:
                cached = yield value
                if cached is not None:
                    return cached
                # original executor died mid-call; we run it instead
            elif state == REPLAY:
                return value
        try:
            with self.tracer.span("proxy.authorize", cat="proxy", prog=call.prog,
                                  proc=call.proc) if self.tracer.enabled else NULL_SPAN:
                reply = yield from self._authorize_and_forward(
                    upstream, call, identity, mapped
                )
        except BaseException:
            if key is not None:
                self._drc.abort(key)
            raise
        encoded = reply.encode()
        if key is not None:
            self._drc.complete(key, encoded)
        return encoded

    def _serve_compound(self, transport, upstream: RpcClient,
                        env: CallMessage,
                        identity: Optional[DistinguishedName],
                        mapped: Optional[Account]):
        """Execute a compound envelope's members strictly in list order
        and answer with a single envelope reply.

        Each member runs through the same DRC/authorize path as a bare
        call (so a retransmitted envelope replays its non-idempotent
        members), but the whole batch pays one inbound and one outbound
        record charge — that amortization is what the envelope buys.
        An undecodable member becomes an empty opaque in the reply so
        its siblings still land."""
        cpu = self.host.cpu
        try:
            members = unpack_members(env.args)
        except Exception:
            return  # garbage envelope: drop (the client retransmits)
        if self.obs.enabled:
            self.obs.counter("proxy.server", "compound_envelopes").inc()
            self.obs.counter("proxy.server", "compound_members").inc(len(members))
        out = []
        for record in members:
            try:
                call = CallMessage.decode(record)
            except Exception:
                out.append(b"")
                continue
            if call.prog == COMPOUND_PROGRAM:
                out.append(b"")  # nested envelopes are not a thing
                continue
            out.append(
                (yield from self._execute_call(upstream, call, identity, mapped))
            )
        encoded = ReplyMessage(xid=env.xid, results=pack_members(out)).encode()
        yield from charge_profile(self.sim, cpu, self.cost, len(encoded), self.account)
        yield from self._send_reply(transport, encoded)

    def _send_reply(self, transport, encoded: bytes):
        """Outbound path: batched channels queue the record for the
        coalescing sealer (which charges the amortized seal cost and
        frees this process immediately); otherwise charge the per-record
        seal here and send synchronously, as always."""
        if getattr(transport, "batched", False):
            transport.queue_record(encoded)
            return
        if hasattr(transport, "charge"):
            yield from transport.charge(len(encoded))
        try:
            transport.send_record(encoded)
        except Exception:
            pass  # peer vanished

    def _authorize_and_forward(self, upstream: RpcClient, call: CallMessage,
                               identity: Optional[DistinguishedName],
                               mapped: Optional[Account]):
        if call.prog != pr.NFS_PROGRAM:
            return denied_reply(call.xid, AUTH_TOOWEAK)
            yield  # pragma: no cover
        if call.proc != Proc.NULL and mapped is None:
            # Authenticated but unmapped (and policy is deny), or an
            # insecure session with no assumed identity.
            self.stats.denied += 1
            return denied_reply(call.xid, AUTH_REJECTEDCRED)

        proc = call.proc
        # -- ACL-file protection -------------------------------------------
        if self.enable_acls:
            blocked = self._screen_acl_names(call)
            if blocked is not None:
                return blocked

        # -- ACCESS interception (§4.3 fine-grained control) -----------------
        if self.enable_acls and proc == Proc.ACCESS and identity is not None:
            misses_before = self.acls.cache_misses
            local = self._answer_access(call, identity)
            if self.acl_disk is not None and self.acls.cache_misses > misses_before:
                # ACL file had to come off the server's disk (§4.3:
                # "for the reason of performance, the ACLs are cached in
                # memory ... once they are read from disk").
                yield from self.acl_disk.read(1024, cached=False)
            if local is not None:
                self.stats.acl_answers += 1
                return local
            self.stats.unix_fallbacks += 1

        # -- identity mapping + forward ---------------------------------------
        out_call = self._remap_credentials(call, mapped)
        self.stats.granted += 1
        self.calls_forwarded += 1
        reply = yield from upstream.call_detailed(
            int(proc), out_call.args, out_call.cred
        )
        reply.xid = call.xid
        # -- screen directory listings -----------------------------------------
        if self.enable_acls and proc in (Proc.READDIR, Proc.READDIRPLUS):
            reply = self._filter_readdir(reply, plus=(proc == Proc.READDIRPLUS))
        return reply

    def _remap_credentials(self, call: CallMessage, mapped: Optional[Account]) -> CallMessage:
        if mapped is None or call.cred.flavor != AUTH_SYS:
            return call
        try:
            auth = AuthSys.from_opaque(call.cred)
        except Exception:
            return call
        remapped = AuthSys(
            stamp=auth.stamp,
            machinename="localhost",
            uid=mapped.uid,
            gid=mapped.gid,
            gids=list(mapped.groups),
        )
        return call.with_cred(remapped.to_opaque())

    # -- ACL machinery -------------------------------------------------------------

    def _screen_acl_names(self, call: CallMessage) -> Optional[ReplyMessage]:
        """Hide and protect ``.name.acl`` files from remote sessions."""
        proc = call.proc
        name_procs = {
            Proc.LOOKUP, Proc.CREATE, Proc.MKDIR, Proc.SYMLINK,
            Proc.REMOVE, Proc.RMDIR,
        }
        try:
            if proc in name_procs:
                from repro.xdr import Unpacker

                u = Unpacker(call.args)
                _fh = FileHandle.unpack(u)
                name = u.unpack_string(max_len=255)
                if is_acl_name(name):
                    status = (
                        NfsStatus.NOENT if proc == Proc.LOOKUP else NfsStatus.ACCES
                    )
                    return self._local_error(call, status)
            elif proc == Proc.RENAME:
                f_dir, f_name, t_dir, t_name = pr.unpack_rename_args(call.args)
                if is_acl_name(f_name) or is_acl_name(t_name):
                    return self._local_error(call, NfsStatus.ACCES)
        except Exception:
            return None  # undecodable: let the server reject it
        return None

    @staticmethod
    def _local_error(call: CallMessage, status: NfsStatus) -> ReplyMessage:
        from repro.nfs.server import NfsServerProgram

        body = NfsServerProgram._error_result(Proc(call.proc), status)
        return ReplyMessage(xid=call.xid, results=body)

    def _answer_access(self, call: CallMessage, identity: DistinguishedName):
        """Answer ACCESS from grid ACLs; None -> fall back to UNIX."""
        try:
            fh, want = pr.unpack_access_args(call.args)
            node = self.fs.inode(fh.fileid)
        except Exception:
            return None
        bits = self.acls.evaluate(node.fileid, identity)
        if bits is None:
            return None  # no ACL in force: UNIX fallback upstream
        attr = Fattr3(
            ftype=int(node.ftype), mode=node.mode, nlink=node.nlink,
            uid=node.uid, gid=node.gid, size=node.size, used=node.used_bytes(),
            fsid=self.fs.fsid, fileid=node.fileid,
            atime=node.atime, mtime=node.mtime, ctime=node.ctime,
        )
        body = pr.pack_access_res(NfsStatus.OK, attr, bits & want)
        return ReplyMessage(xid=call.xid, results=body)

    def _filter_readdir(self, reply: ReplyMessage, plus: bool) -> ReplyMessage:
        if reply.results == b"":
            return reply
        try:
            status, dir_attr, entries, eof = pr.unpack_readdir_res(reply.results, plus=plus)
        except Exception:
            return reply
        if status != NfsStatus.OK:
            return reply
        visible = [e for e in entries if not is_acl_name(e.name)]
        if len(visible) == len(entries):
            return reply
        reply.results = pr.pack_readdir_res(status, dir_attr, visible, eof, plus=plus)
        return reply
