"""Scale-out harness: N concurrent clients against one server.

The paper evaluates SGFS with one client per session, but the system's
point is *grid-wide* sharing — many users mounting one server through
per-user secured sessions.  :func:`run_fleet` builds that scenario on a
single deterministic simulation:

- one server (kernel NFS + one shared server-side proxy for the proxied
  setups), running the worker-pool RPC discipline
  (:class:`repro.rpc.server.RpcServer` with ``workers=N``) and
  per-fileid reader/writer locking in the NFS program;
- N client *hosts* (``c0`` … ``cN-1``), each with its own kernel-like
  NFS client, client proxy, TLS session, proxy cache, and DRBG stream
  — per-client certificates are issued by one CA and mapped through the
  shared gridmap to per-client accounts, so the server proxy enforces
  gridmap/ACL policy per session;
- per-client workload instances over per-client subdirectories
  (``/c0`` … ) of the shared export, with a synchronized or staggered
  start schedule.

Determinism: client processes are spawned in index order, every queue in
the stack is FIFO, and all randomness flows from ``session_seed``
through forked DRBG streams — two same-seed runs are bit-identical,
including under ``faults=`` (packet-level fault schedules are seeded by
``fault_seed`` exactly as in :func:`repro.harness.runner.run_workload`).

All times are **virtual seconds**; all sizes are **bytes**.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.calibration import Calibration, DEFAULT_CALIBRATION
from repro.core.setups import (
    CA_DN,
    FILE_ACCOUNT,
    JOB_ACCOUNT,
    SERVER_DN,
    USER_DN,
    Mount,
    _cache_config,
    _cache_disk,
    _kernel_client,
)
from repro.core.topology import (
    CLIENT_PROXY_PORT,
    NFS_PORT,
    SERVER_PROXY_PORT,
    Testbed,
)
from repro.crypto.drbg import Drbg
from repro.faults import FaultPlan, resolve_fault_preset
from repro.gsi import CertificateAuthority, DistinguishedName, Gridmap
from repro.gsi.gridmap import UnmappedPolicy
from repro.nfs import protocol as pr
from repro.nfs.protocol import FileHandle
from repro.nfs.v4 import NFS_V4
from repro.proxy.accounts import Account
from repro.proxy.client_proxy import SgfsClientProxy
from repro.proxy.server_proxy import SgfsServerProxy
from repro.rpc.auth import AuthSys
from repro.rpc.transport import StreamTransport
from repro.sim.sync import Channel
from repro.tls import SecurityConfig
from repro.tls.channel import client_handshake
from repro.vfs.fs import ROOT_CRED, Credentials

#: first uid of the per-client grid accounts (``grid00`` = 9100, …)
FLEET_UID_BASE = 9100

_SUITES = {
    "sgfs-sha": "null-sha1",
    "sgfs-rc": "rc4-128-sha1",
    "sgfs-aes": "aes-256-cbc-sha1",
    "sgfs": "aes-256-cbc-sha1",
}


@dataclass
class FleetClientResult:
    """One fleet member's outcome (virtual seconds)."""

    name: str
    start: float
    end: float
    phases: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.end - self.start


@dataclass
class FleetResult:
    """Aggregate outcome of a fleet run.

    ``makespan`` is launch-to-last-finish in virtual seconds (staggered
    starts included); ``per_client`` is ordered by client index.
    ``stats`` is the merged cross-layer registry snapshot — colliding
    per-session collector names are summed, see
    :func:`repro.obs.merge_metric`.
    """

    setup: str
    clients: int
    makespan: float
    per_client: List[FleetClientResult] = field(default_factory=list)
    stats: Dict[str, object] = field(default_factory=dict)
    #: fleet-wide bottleneck-attribution report (profile=True runs);
    #: its ``clients`` section breaks span self-time down per member
    profile: Optional[Dict[str, object]] = None
    #: the span tracer when the run was traced/profiled — client tracks
    #: are namespace-prefixed (``c0:...``), so Chrome-trace and flame
    #: exports keep the N clients apart
    tracer: Optional[object] = None

    def aggregate_throughput(self, bytes_per_client: int) -> float:
        """Fleet-wide rate in bytes per virtual second, given how many
        payload bytes each client's workload moved."""
        if self.makespan <= 0.0:
            return 0.0
        return self.clients * bytes_per_client / self.makespan

    @property
    def mean_client_seconds(self) -> float:
        if not self.per_client:
            return 0.0
        return sum(c.total for c in self.per_client) / len(self.per_client)


class _ScopedFs:
    """A view of the shared VFS rooted at one client's subdirectory.

    Workload ``prepare`` hooks address the export through ``tb.fs.root``;
    handing them this view (via a shallow testbed copy) makes the same
    unmodified workload land its dataset inside the client's directory.
    """

    def __init__(self, fs, root_inode):
        self._fs = fs
        self.root = root_inode

    def __getattr__(self, name):
        return getattr(self._fs, name)


class _ScopedTestbed:
    """Testbed facade whose ``fs`` is a :class:`_ScopedFs`."""

    def __init__(self, tb: Testbed, scoped_fs: _ScopedFs):
        self._tb = tb
        self.fs = scoped_fs

    def __getattr__(self, name):
        return getattr(self._tb, name)


def _client_dn(i: int) -> DistinguishedName:
    return DistinguishedName.parse(f"/C=US/O=UFL/OU=ACIS/CN=Grid User {i:02d}")


def run_fleet(
    setup: str,
    workload_factory: Callable[..., object],
    clients: int = 4,
    rtt: float = 0.0,
    cal: Calibration = DEFAULT_CALIBRATION,
    stagger: float = 0.0,
    setup_kwargs: Optional[dict] = None,
    telemetry: bool = True,
    tracing: bool = False,
    profile: bool = False,
    faults=None,
    fault_seed: str = "faults",
    server_workers: Optional[int] = 8,
    session_seed: str = "fleet",
    server_cores: int = 1,
    session_tickets: bool = False,
    reconnect_interval: Optional[float] = None,
    batch_records: int = 1,
) -> FleetResult:
    """Run ``clients`` concurrent workload instances against one server.

    ``setup`` is a :data:`~repro.core.setups.SETUP_BUILDERS` family:
    ``nfs-v3`` / ``nfs-v4`` (kernel clients straight at the server),
    ``gfs`` (proxied, plain channel, every session mapped to the
    management account), or ``sgfs-sha`` / ``sgfs-rc`` / ``sgfs-aes`` /
    ``sgfs`` (proxied, per-client TLS sessions with per-client
    certificates and gridmap entries).  ``sfs`` and ``gfs-ssh`` are
    single-session designs and raise ``ValueError``.

    ``workload_factory`` builds one workload per client; it may take
    zero arguments or the client index (for per-client workload mixes).
    ``stagger`` spaces client starts that many virtual seconds apart
    (0 = synchronized start).  ``server_workers`` sizes the server-side
    RPC worker pool (``None`` = legacy spawn-per-call dispatch).

    Returns a :class:`FleetResult`; all reported times are virtual
    seconds.  Two calls with identical arguments produce bit-identical
    results (same ``makespan``, ``per_client``, and ``stats``).

    ``profile=True`` (or a dict of ``build_report`` keyword arguments)
    attaches the fleet-wide bottleneck-attribution report to
    ``result.profile`` and the namespaced span tracer to
    ``result.tracer``; neither affects virtual-time results.

    Scale-out knobs (all default to the paper's single-core behavior):
    ``server_cores=N`` gives the server host N deterministic cores, with
    each secure session's record crypto pinned to one of them;
    ``session_tickets=True`` turns on TLS session resumption between the
    proxies; ``reconnect_interval=T`` makes every client cycle its
    upstream session every T virtual seconds (exercising resumption);
    ``batch_records=K`` coalesces up to K outbound server-proxy records
    into one amortized sealing operation.
    """
    if clients < 1:
        raise ValueError("fleet needs at least one client")
    if setup in ("sfs", "gfs-ssh"):
        raise ValueError(f"{setup} is a single-session design; fleets unsupported")
    if setup not in ("nfs-v3", "nfs-v4", "gfs") and setup not in _SUITES:
        raise ValueError(f"unknown fleet setup {setup!r}")
    kw = dict(setup_kwargs or {})
    cache_bytes = kw.pop("cache_bytes", None)
    disk_cache = kw.pop("disk_cache", False)
    if kw:
        raise ValueError(f"unsupported fleet setup_kwargs: {sorted(kw)}")

    if profile:
        telemetry = tracing = True
    tb = Testbed.build(
        rtt=rtt, cal=cal, telemetry=telemetry, tracing=tracing,
        server_workers=server_workers, vfs_locking=True, profile=profile,
        server_cores=server_cores,
    )
    sim = tb.sim
    proxied = setup not in ("nfs-v3", "nfs-v4")
    secure = setup in _SUITES

    # -- per-client identities, accounts, and the shared policy ------------
    rng = Drbg(session_seed)
    names = [f"c{i}" for i in range(clients)]
    hosts = [tb.add_client(n) for n in names]
    if secure:
        owners = [
            Account(f"grid{i:02d}", FLEET_UID_BASE + i, FLEET_UID_BASE + i)
            for i in range(clients)
        ]
    else:
        owners = [FILE_ACCOUNT] * clients

    server_proxy = None
    client_cfgs: List[Optional[SecurityConfig]] = [None] * clients
    if proxied:
        gridmap = Gridmap(unmapped=UnmappedPolicy.DENY)
        server_cfg = None
        if secure:
            suite = _SUITES[setup]
            ca = CertificateAuthority(
                CA_DN, rng=rng.fork("ca"), key_bits=1024, now=sim.now
            )
            host_id = ca.issue_identity(
                SERVER_DN, rng=rng.fork("host"), key_bits=1024, now=sim.now
            )
            server_cfg = SecurityConfig.for_session(
                host_id, [ca.certificate], suite, fast_ciphers=True,
                rng=rng.fork("server-tls"),
                session_tickets=session_tickets,
                batch_records=batch_records,
            )
            for i in range(clients):
                dn = _client_dn(i)
                user = ca.issue_identity(
                    dn, rng=rng.fork(f"user{i}"), key_bits=1024, now=sim.now
                )
                client_cfgs[i] = SecurityConfig.for_session(
                    user, [ca.certificate], suite, fast_ciphers=True,
                    rng=rng.fork(f"client-tls{i}"),
                    session_tickets=session_tickets,
                )
                gridmap.add(dn, owners[i].name)
                tb.server_accounts.add(owners[i])
        else:
            gridmap.add(USER_DN, FILE_ACCOUNT.name)
        if FILE_ACCOUNT.name not in tb.server_accounts:
            tb.server_accounts.add(FILE_ACCOUNT)
        server_proxy = SgfsServerProxy(
            sim, tb.server, SERVER_PROXY_PORT, NFS_PORT,
            accounts=tb.server_accounts, gridmap=gridmap, fs=tb.fs,
            security=server_cfg, cost=cal.proxy_cost, account="proxy",
            blocking=True, enable_acls=True,
            session_identity=None if secure else USER_DN,
            acl_disk=tb.server_disk,
        )
        server_proxy.start()

    # -- per-client namespaces and workload preparation --------------------
    # Subdirectories are created out of band (setup scripts run as root
    # server-side), then chowned to the session owner, so every client's
    # dataset is isolated while living in one shared export.
    workloads = []
    takes_index = bool(inspect.signature(workload_factory).parameters)
    root_fid = tb.fs.root.fileid
    for i, name in enumerate(names):
        node = tb.fs.mkdir(root_fid, name, ROOT_CRED)
        tb.fs.setattr(node.fileid, ROOT_CRED, uid=owners[i].uid, gid=owners[i].gid)
        workload = workload_factory(i) if takes_index else workload_factory()
        scoped = _ScopedTestbed(tb, _ScopedFs(tb.fs, node))
        if hasattr(workload, "prepare"):
            workload.prepare(scoped)
        workloads.append((workload, node))

    # -- faults -------------------------------------------------------------
    plan = None
    fault_spec = resolve_fault_preset(faults)
    if fault_spec is not None:
        plan = FaultPlan(sim, fault_spec, seed=fault_seed)
        plan.install(tb.net)
        handlers = {"server": (tb.crash_nfs_server, tb.restart_nfs_server)}
        if server_proxy is not None and hasattr(server_proxy, "crash"):
            handlers["server-proxy"] = (server_proxy.crash, server_proxy.restart)
        plan.schedule(handlers)

    # -- client processes ---------------------------------------------------
    t0 = sim.now
    results: List[Optional[FleetClientResult]] = [None] * clients
    errors: List[BaseException] = []
    done = Channel(sim, name="fleet-done")

    def client_proc(i: int):
        host, name = hosts[i], names[i]
        workload, node = workloads[i]
        cycling = None
        try:
            if stagger and i:
                yield sim.timeout(stagger * i)
            start = sim.now
            root_fh = FileHandle(tb.fs.fsid, node.fileid, node.generation)
            if proxied:
                cfg = client_cfgs[i]

                def upstream_factory(cfg=cfg, host=host):
                    sock = yield from host.connect("server", SERVER_PROXY_PORT)
                    if cfg is None:
                        return StreamTransport(sock)
                    channel = yield from client_handshake(
                        sim, sock, cfg, cpu=host.cpu, account="proxy"
                    )
                    return channel

                proxy = SgfsClientProxy(
                    sim, host, CLIENT_PROXY_PORT,
                    upstream_factory=upstream_factory,
                    cost=cal.proxy_cost, account="proxy",
                    cache=_cache_config(tb, disk_cache),
                    disk=_cache_disk(tb, disk_cache),
                    blocking=True,
                )
                yield from proxy.start()
                if reconnect_interval:
                    # Periodic session refresh: tears the upstream TLS
                    # session down and re-handshakes (abbreviated, when
                    # tickets are on) until this client's workload ends.
                    cycling = [True]

                    def cycler(proxy=proxy, live=cycling):
                        while live[0]:
                            yield sim.timeout(reconnect_interval)
                            if not live[0]:
                                return
                            yield from proxy.cycle_upstream()

                    sim.spawn(cycler(), name=f"session-cycler:{name}")
                cred = AuthSys(uid=JOB_ACCOUNT.uid, gid=JOB_ACCOUNT.gid,
                               machinename=name)
                client = yield from _kernel_client(
                    tb, name, CLIENT_PROXY_PORT, cred, cache_bytes,
                    host=host, root_fh=root_fh,
                )
            else:
                proxy = None
                cred = AuthSys(uid=owners[i].uid, gid=owners[i].gid,
                               machinename=name)
                client = yield from _kernel_client(
                    tb, "server", NFS_PORT, cred, cache_bytes,
                    host=host, root_fh=root_fh,
                    vers=NFS_V4 if setup == "nfs-v4" else pr.NFS_V3,
                )
            if fault_spec is not None:
                if fault_spec.client_timeo is not None and hasattr(client, "timeo"):
                    client.timeo = fault_spec.client_timeo
                if fault_spec.proxy_timeo is not None and proxy is not None:
                    proxy.upstream_timeo = fault_spec.proxy_timeo
            mount = Mount(f"{setup}:{name}", tb, client, client_proxy=proxy,
                          server_proxy=server_proxy)
            yield from workload.run(mount)
            yield from mount.finish()
            results[i] = FleetClientResult(
                name=name, start=start, end=sim.now,
                phases=dict(getattr(workload, "results", {})),
            )
        except BaseException as exc:  # surfaced after the join below
            errors.append(exc)
        finally:
            if cycling is not None:
                cycling[0] = False
            done.put(i)

    for i in range(clients):
        proc = sim.spawn(client_proc(i), name=f"fleet-{names[i]}")
        # Namespace the client's span tracks: every process spawned
        # inside the subtree inherits this via sim.current.
        proc.trace_ns = names[i]

    def supervisor():
        for _ in range(clients):
            yield done.get()

    sim.run_until_complete(sim.spawn(supervisor(), name="fleet-join"))
    if plan is not None:
        plan.uninstall()
    if errors:
        raise errors[0]

    result = FleetResult(
        setup=setup, clients=clients,
        makespan=max(r.end for r in results) - t0,
        per_client=list(results),
    )
    result.stats.update(tb.obs.snapshot())
    if plan is not None:
        result.stats["faults"] = dict(plan.stats)
    if tracing:
        result.tracer = tb.tracer
    if profile:
        from repro.obs.profile import build_report

        kwargs = profile if isinstance(profile, dict) else {}
        result.profile = build_report(
            tb, t0=t0, t_end=max(r.end for r in results), **kwargs
        )
    return result
