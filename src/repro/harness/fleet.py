"""Scale-out harness: N concurrent clients against one server.

The paper evaluates SGFS with one client per session, but the system's
point is *grid-wide* sharing — many users mounting one server through
per-user secured sessions.  :func:`run_fleet` builds that scenario on a
single deterministic simulation:

- one server (kernel NFS + one shared server-side proxy for the proxied
  setups), running the worker-pool RPC discipline
  (:class:`repro.rpc.server.RpcServer` with ``workers=N``) and
  per-fileid reader/writer locking in the NFS program;
- N client *hosts* (``c0`` … ``cN-1``), each with its own kernel-like
  NFS client, client proxy, TLS session, proxy cache, and DRBG stream
  — per-client certificates are issued by one CA and mapped through the
  shared gridmap to per-client accounts, so the server proxy enforces
  gridmap/ACL policy per session;
- per-client workload instances over per-client subdirectories
  (``/c0`` … ) of the shared export, with a synchronized or staggered
  start schedule.

Determinism: client processes are spawned in index order, every queue in
the stack is FIFO, and all randomness flows from ``session_seed``
through forked DRBG streams — two same-seed runs are bit-identical,
including under ``faults=`` (packet-level fault schedules are seeded by
``fault_seed`` exactly as in :func:`repro.harness.runner.run_workload`).

All times are **virtual seconds**; all sizes are **bytes**.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.calibration import Calibration, DEFAULT_CALIBRATION
from repro.core.setups import (
    CA_DN,
    FILE_ACCOUNT,
    JOB_ACCOUNT,
    SERVER_DN,
    USER_DN,
    Mount,
    _cache_config,
    _cache_disk,
    _kernel_client,
)
from repro.core.topology import (
    CLIENT_PROXY_PORT,
    GRID_META_PORT,
    NFS_PORT,
    SERVER_PROXY_PORT,
    Testbed,
)
from repro.crypto.drbg import Drbg
from repro.faults import FaultPlan, resolve_fault_preset
from repro.grid import (
    GridMetadataClient,
    GridMetadataProgram,
    GridMetadataService,
    GridRouter,
)
from repro.grid.layout import DEFAULT_BLOCK_SIZE
from repro.gsi import (
    CertificateAuthority,
    DELEGATION_CPU_SECONDS,
    DistinguishedName,
    Gridmap,
    issue_proxy_certificate,
)
from repro.gsi.gridmap import UnmappedPolicy
from repro.nfs import protocol as pr
from repro.nfs.protocol import FileHandle
from repro.nfs.v4 import NFS_V4
from repro.proxy.accounts import Account
from repro.proxy.client_proxy import SgfsClientProxy, UpstreamSession
from repro.proxy.server_proxy import SgfsServerProxy
from repro.rpc.auth import AuthSys
from repro.rpc.server import RpcServer
from repro.rpc.transport import StreamTransport
from repro.sim import Interrupt
from repro.sim.sync import Channel
from repro.tls import SecurityConfig
from repro.tls.channel import client_handshake
from repro.vfs.fs import ROOT_CRED, Credentials

#: first uid of the per-client grid accounts (``grid00`` = 9100, …)
FLEET_UID_BASE = 9100

_SUITES = {
    "sgfs-sha": "null-sha1",
    "sgfs-rc": "rc4-128-sha1",
    "sgfs-aes": "aes-256-cbc-sha1",
    "sgfs": "aes-256-cbc-sha1",
}


@dataclass
class FleetClientResult:
    """One fleet member's outcome (virtual seconds)."""

    name: str
    start: float
    end: float
    phases: Dict[str, float] = field(default_factory=dict)
    #: payload bytes this client's workload actually moved, when the
    #: workload reports them (``workload.bytes_moved``); None otherwise
    bytes_moved: Optional[int] = None

    @property
    def total(self) -> float:
        return self.end - self.start


@dataclass
class FleetResult:
    """Aggregate outcome of a fleet run.

    ``makespan`` is launch-to-last-finish in virtual seconds (staggered
    starts included); ``per_client`` is ordered by client index.
    ``stats`` is the merged cross-layer registry snapshot — colliding
    per-session collector names are summed, see
    :func:`repro.obs.merge_metric`.
    """

    setup: str
    clients: int
    makespan: float
    per_client: List[FleetClientResult] = field(default_factory=list)
    stats: Dict[str, object] = field(default_factory=dict)
    #: fleet-wide bottleneck-attribution report (profile=True runs);
    #: its ``clients`` section breaks span self-time down per member
    profile: Optional[Dict[str, object]] = None
    #: the span tracer when the run was traced/profiled — client tracks
    #: are namespace-prefixed (``c0:...``), so Chrome-trace and flame
    #: exports keep the N clients apart
    tracer: Optional[object] = None

    def aggregate_throughput(self, bytes_per_client: Optional[int] = None) -> float:
        """Fleet-wide rate in bytes per virtual second.

        With no argument, computes the rate from the **actual** bytes
        each client reported moving (``per_client[i].bytes_moved``) —
        correct for mixed workloads and runs where some clients moved
        fewer bytes than planned (e.g. under fault schedules).

        Passing ``bytes_per_client`` keeps the historical convenience
        estimate ``clients * bytes_per_client / makespan``, which
        **over-reports** whenever clients don't all move exactly that
        many bytes; use it only for uniform workloads that don't report
        ``bytes_moved``.
        """
        if self.makespan <= 0.0:
            return 0.0
        if bytes_per_client is None:
            counts = [c.bytes_moved for c in self.per_client]
            if any(b is None for b in counts):
                missing = [c.name for c in self.per_client if c.bytes_moved is None]
                raise ValueError(
                    f"clients {missing} did not report bytes_moved; pass "
                    f"bytes_per_client for the per-client estimate instead"
                )
            return sum(counts) / self.makespan
        return self.clients * bytes_per_client / self.makespan

    @property
    def mean_client_seconds(self) -> float:
        if not self.per_client:
            return 0.0
        return sum(c.total for c in self.per_client) / len(self.per_client)


class _ScopedFs:
    """A view of the shared VFS rooted at one client's subdirectory.

    Workload ``prepare`` hooks address the export through ``tb.fs.root``;
    handing them this view (via a shallow testbed copy) makes the same
    unmodified workload land its dataset inside the client's directory.
    """

    def __init__(self, fs, root_inode):
        self._fs = fs
        self.root = root_inode

    def __getattr__(self, name):
        return getattr(self._fs, name)


class _ScopedTestbed:
    """Testbed facade whose ``fs`` is a :class:`_ScopedFs`."""

    def __init__(self, tb: Testbed, scoped_fs: _ScopedFs):
        self._tb = tb
        self.fs = scoped_fs

    def __getattr__(self, name):
        return getattr(self._tb, name)


def _client_dn(i: int) -> DistinguishedName:
    return DistinguishedName.parse(f"/C=US/O=UFL/OU=ACIS/CN=Grid User {i:02d}")


def run_fleet(
    setup: str,
    workload_factory: Callable[..., object],
    clients: int = 4,
    rtt: float = 0.0,
    cal: Calibration = DEFAULT_CALIBRATION,
    stagger: float = 0.0,
    setup_kwargs: Optional[dict] = None,
    telemetry: bool = True,
    tracing: bool = False,
    profile: bool = False,
    faults=None,
    fault_seed: str = "faults",
    server_workers: Optional[int] = 8,
    session_seed: str = "fleet",
    server_cores: int = 1,
    session_tickets: bool = False,
    reconnect_interval: Optional[float] = None,
    batch_records: int = 1,
    servers: int = 1,
    replicas: int = 1,
    grid_block_size: int = DEFAULT_BLOCK_SIZE,
    streams: int = 1,
    pipeline_depth: Optional[int] = None,
    delegation_lifetime: Optional[float] = None,
) -> FleetResult:
    """Run ``clients`` concurrent workload instances against one server.

    ``setup`` is a :data:`~repro.core.setups.SETUP_BUILDERS` family:
    ``nfs-v3`` / ``nfs-v4`` (kernel clients straight at the server),
    ``gfs`` (proxied, plain channel, every session mapped to the
    management account), or ``sgfs-sha`` / ``sgfs-rc`` / ``sgfs-aes`` /
    ``sgfs`` (proxied, per-client TLS sessions with per-client
    certificates and gridmap entries).  ``sfs`` and ``gfs-ssh`` are
    single-session designs and raise ``ValueError``.

    ``workload_factory`` builds one workload per client; it may take
    zero arguments or the client index (for per-client workload mixes).
    ``stagger`` spaces client starts that many virtual seconds apart
    (0 = synchronized start).  ``server_workers`` sizes the server-side
    RPC worker pool (``None`` = legacy spawn-per-call dispatch).

    Returns a :class:`FleetResult`; all reported times are virtual
    seconds.  Two calls with identical arguments produce bit-identical
    results (same ``makespan``, ``per_client``, and ``stats``).

    ``profile=True`` (or a dict of ``build_report`` keyword arguments)
    attaches the fleet-wide bottleneck-attribution report to
    ``result.profile`` and the namespaced span tracer to
    ``result.tracer``; neither affects virtual-time results.

    Scale-out knobs (all default to the paper's single-core behavior):
    ``server_cores=N`` gives the server host N deterministic cores, with
    each secure session's record crypto pinned to one of them;
    ``session_tickets=True`` turns on TLS session resumption between the
    proxies; ``reconnect_interval=T`` makes every client cycle its
    upstream session every T virtual seconds (exercising resumption);
    ``batch_records=K`` coalesces up to K outbound server-proxy records
    into one amortized sealing operation.

    ``servers=N`` (with N > 1) shards the data plane: N backend NFS
    servers each behind their own server-side proxy, one metadata
    service on the home server mapping each grid-created file's
    ``grid_block_size`` block ranges round-robin across them, and every
    client striping block I/O over N upstream sessions
    (:mod:`repro.grid`).  ``replicas=K`` writes each block to K
    consecutive backends, so a crashed backend's blocks stay readable.
    ``servers=1`` takes the exact single-server code path — results are
    bit-identical to a build without the knob.

    ``streams=N`` (with N > 1) opens N parallel proxy-to-proxy
    sub-channels per upstream leg (bulk block traffic round-robins
    across them) and ``pipeline_depth`` caps the RTT-sized read-ahead/
    write-behind windows — the WAN transfer engine.  Secure setups
    force session tickets on so sub-channels resume rather than repeat
    the full handshake.  ``streams=1`` with no pipeline depth is the
    exact historical code path.

    ``delegation_lifetime=T`` (secure setups only) switches every client
    to SSO-style **delegated credentials**: each session authenticates
    with a short-lived *limited* proxy certificate (lifetime T virtual
    seconds) delegated from the client's long-term identity instead of
    the identity itself.  A reconnect after expiry first re-delegates —
    charging :data:`~repro.gsi.proxy.DELEGATION_CPU_SECONDS` and
    re-entering the gridmap (bumping its epoch, so the server proxy's
    authz cache revalidates) — then handshakes; with session tickets on,
    that handshake still resumes abbreviated, so renewal costs one
    delegation rather than a full RSA exchange.  Counters
    ``gsi.delegations`` / ``gsi.renewals`` record the churn.  ``None``
    is the exact historical code path.
    """
    if clients < 1:
        raise ValueError("fleet needs at least one client")
    if setup in ("sfs", "gfs-ssh"):
        raise ValueError(f"{setup} is a single-session design; fleets unsupported")
    if setup not in ("nfs-v3", "nfs-v4", "gfs") and setup not in _SUITES:
        raise ValueError(f"unknown fleet setup {setup!r}")
    if servers < 1:
        raise ValueError("servers must be >= 1")
    if not 1 <= replicas <= servers:
        raise ValueError(f"replicas must be in [1, servers]; got {replicas}")
    grid = servers > 1
    if grid and setup in ("nfs-v3", "nfs-v4"):
        raise ValueError("sharded data plane (servers > 1) requires a proxied setup")
    if delegation_lifetime is not None:
        if setup not in _SUITES:
            raise ValueError("delegation_lifetime requires a secure (sgfs*) setup")
        if delegation_lifetime <= 0:
            raise ValueError("delegation_lifetime must be positive")
    kw = dict(setup_kwargs or {})
    cache_bytes = kw.pop("cache_bytes", None)
    disk_cache = kw.pop("disk_cache", False)
    if kw:
        raise ValueError(f"unsupported fleet setup_kwargs: {sorted(kw)}")

    if profile:
        telemetry = tracing = True
    tb = Testbed.build(
        rtt=rtt, cal=cal, telemetry=telemetry, tracing=tracing,
        server_workers=server_workers, vfs_locking=True, profile=profile,
        server_cores=server_cores, servers=servers,
    )
    sim = tb.sim
    proxied = setup not in ("nfs-v3", "nfs-v4")
    secure = setup in _SUITES
    streams = max(1, int(streams))
    if streams > 1 and secure:
        # sub-channels 1..N-1 resume channel 0's session keys
        session_tickets = True

    # -- per-client identities, accounts, and the shared policy ------------
    rng = Drbg(session_seed)
    names = [f"c{i}" for i in range(clients)]
    hosts = [tb.add_client(n) for n in names]
    if secure:
        owners = [
            Account(f"grid{i:02d}", FLEET_UID_BASE + i, FLEET_UID_BASE + i)
            for i in range(clients)
        ]
    else:
        owners = [FILE_ACCOUNT] * clients

    # SSO delegation state (populated only for delegation_lifetime runs;
    # the counters are registered lazily so legacy runs' stat schemas are
    # untouched).
    base_identities: List[Optional[object]] = [None] * clients
    delegation_counts = [0] * clients
    if delegation_lifetime is not None:
        c_delegations = tb.obs.counter("gsi", "delegations")
        c_renewals = tb.obs.counter("gsi", "renewals")

    server_proxy = None
    client_cfgs: List[Optional[SecurityConfig]] = [None] * clients
    if proxied:
        gridmap = Gridmap(unmapped=UnmappedPolicy.DENY)
        server_cfg = None
        if secure:
            suite = _SUITES[setup]
            ca = CertificateAuthority(
                CA_DN, rng=rng.fork("ca"), key_bits=1024, now=sim.now
            )
            host_id = ca.issue_identity(
                SERVER_DN, rng=rng.fork("host"), key_bits=1024, now=sim.now
            )
            server_cfg = SecurityConfig.for_session(
                host_id, [ca.certificate], suite, fast_ciphers=True,
                rng=rng.fork("server-tls"),
                session_tickets=session_tickets,
                batch_records=batch_records,
            )
            for i in range(clients):
                dn = _client_dn(i)
                user = ca.issue_identity(
                    dn, rng=rng.fork(f"user{i}"), key_bits=1024, now=sim.now
                )
                session_cred = user
                if delegation_lifetime is not None:
                    # SSO: the session holds a short-lived limited proxy,
                    # never the long-term key (the "login").
                    base_identities[i] = user
                    session_cred = issue_proxy_certificate(
                        user, now=sim.now, lifetime=delegation_lifetime,
                        rng=rng.fork(f"delegate{i}:0"), key_bits=1024,
                        limited=True,
                    )
                    delegation_counts[i] = 1
                    c_delegations.inc()
                client_cfgs[i] = SecurityConfig.for_session(
                    session_cred, [ca.certificate], suite, fast_ciphers=True,
                    rng=rng.fork(f"client-tls{i}"),
                    session_tickets=session_tickets,
                )
                gridmap.add(dn, owners[i].name)
                tb.server_accounts.add(owners[i])
        else:
            gridmap.add(USER_DN, FILE_ACCOUNT.name)
        if FILE_ACCOUNT.name not in tb.server_accounts:
            tb.server_accounts.add(FILE_ACCOUNT)
        server_proxy = SgfsServerProxy(
            sim, tb.server, SERVER_PROXY_PORT, NFS_PORT,
            accounts=tb.server_accounts, gridmap=gridmap, fs=tb.fs,
            security=server_cfg, cost=cal.proxy_cost, account="proxy",
            blocking=True, enable_acls=True,
            session_identity=None if secure else USER_DN,
            acl_disk=tb.server_disk,
        )
        server_proxy.start()

    # -- sharded data plane: backend proxies + the metadata service --------
    backend_proxies: List[Optional[SgfsServerProxy]] = [server_proxy]
    if grid:
        for b in range(1, servers):
            backend = tb.backends[b]
            bcfg = None
            if secure:
                bcfg = SecurityConfig.for_session(
                    host_id, [ca.certificate], suite, fast_ciphers=True,
                    rng=rng.fork(f"server-tls-s{b}"),
                    session_tickets=session_tickets,
                    batch_records=batch_records,
                )
            bproxy = SgfsServerProxy(
                sim, backend.host, SERVER_PROXY_PORT, NFS_PORT,
                accounts=tb.server_accounts, gridmap=gridmap, fs=backend.fs,
                security=bcfg, cost=cal.proxy_cost, account="proxy",
                blocking=True, enable_acls=True,
                session_identity=None if secure else USER_DN,
                acl_disk=backend.disk,
            )
            bproxy.start()
            backend_proxies.append(bproxy)
        grid_service = GridMetadataService(
            width=servers, replicas=replicas, block_size=grid_block_size,
            obs=tb.obs,
        )
        meta_rpc = RpcServer(
            sim, cpu=tb.server.cpu, cost=cal.kernel_server_cost,
            account="grid-meta", name="grid-meta",
        )
        meta_rpc.register(GridMetadataProgram(grid_service))
        meta_rpc.serve_listener(tb.server.listen(GRID_META_PORT))

    # -- per-client namespaces and workload preparation --------------------
    # Subdirectories are created out of band (setup scripts run as root
    # server-side), then chowned to the session owner, so every client's
    # dataset is isolated while living in one shared export.
    workloads = []
    takes_index = bool(inspect.signature(workload_factory).parameters)
    root_fid = tb.fs.root.fileid
    for i, name in enumerate(names):
        node = tb.fs.mkdir(root_fid, name, ROOT_CRED)
        tb.fs.setattr(node.fileid, ROOT_CRED, uid=owners[i].uid, gid=owners[i].gid)
        workload = workload_factory(i) if takes_index else workload_factory()
        scoped = _ScopedTestbed(tb, _ScopedFs(tb.fs, node))
        if hasattr(workload, "prepare"):
            workload.prepare(scoped)
        workloads.append((workload, node))

    # Mirror the per-client subdirectories onto every extra backend (out
    # of band, like the home-side mkdirs above) and record each client's
    # per-backend root handles for the stripe router.
    grid_roots: List[Dict[int, FileHandle]] = []
    if grid:
        for i, name in enumerate(names):
            node = workloads[i][1]
            handles = {0: FileHandle(tb.fs.fsid, node.fileid, node.generation)}
            for b in range(1, servers):
                bfs = tb.backends[b].fs
                bnode = bfs.mkdir(bfs.root.fileid, name, ROOT_CRED)
                bfs.setattr(bnode.fileid, ROOT_CRED,
                            uid=owners[i].uid, gid=owners[i].gid)
                handles[b] = FileHandle(bfs.fsid, bnode.fileid, bnode.generation)
            grid_roots.append(handles)

    # -- faults -------------------------------------------------------------
    plan = None
    fault_spec = resolve_fault_preset(faults)
    if fault_spec is not None:
        plan = FaultPlan(sim, fault_spec, seed=fault_seed)
        plan.install(tb.net)
        handlers = {"server": (tb.crash_nfs_server, tb.restart_nfs_server)}
        if server_proxy is not None and hasattr(server_proxy, "crash"):
            handlers["server-proxy"] = (server_proxy.crash, server_proxy.restart)
        if grid:
            # "backendN" crashes backend N's whole stack: its kernel NFS
            # server and its server-side proxy go down together
            for b in range(1, servers):
                def _crash(b=b, p=backend_proxies[b]):
                    tb.crash_backend(b)
                    if p is not None:
                        p.crash()

                def _restart(b=b, p=backend_proxies[b]):
                    tb.restart_backend(b)
                    if p is not None:
                        p.restart()

                handlers[f"backend{b}"] = (_crash, _restart)
        plan.schedule(handlers)

    # -- client processes ---------------------------------------------------
    t0 = sim.now
    results: List[Optional[FleetClientResult]] = [None] * clients
    errors: List[BaseException] = []
    done = Channel(sim, name="fleet-done")

    def client_proc(i: int):
        host, name = hosts[i], names[i]
        workload, node = workloads[i]
        cycler_proc = None
        try:
            if stagger and i:
                yield sim.timeout(stagger * i)
            start = sim.now
            root_fh = FileHandle(tb.fs.fsid, node.fileid, node.generation)
            if proxied:
                cfg = client_cfgs[i]

                def make_factory(target, cfg=cfg, host=host, i=i):
                    def upstream_factory():
                        if (
                            cfg is not None
                            and delegation_lifetime is not None
                            and cfg.credential.certificate.not_after <= sim.now
                        ):
                            # Delegation expired: re-delegate before the
                            # handshake (the server would reject the stale
                            # chain).  The fresh gridmap add bumps the
                            # epoch, so the server proxy's authz cache
                            # revalidates this DN under churn.
                            n = delegation_counts[i]
                            delegation_counts[i] = n + 1
                            yield from host.cpu.consume(
                                DELEGATION_CPU_SECONDS, "proxy"
                            )
                            cfg.credential = issue_proxy_certificate(
                                base_identities[i], now=sim.now,
                                lifetime=delegation_lifetime,
                                rng=rng.fork(f"delegate{i}:{n}"),
                                key_bits=1024, limited=True,
                            )
                            gridmap.add(_client_dn(i), owners[i].name)
                            c_delegations.inc()
                            c_renewals.inc()
                        sock = yield from host.connect(target, SERVER_PROXY_PORT)
                        if cfg is None:
                            return StreamTransport(sock)
                        channel = yield from client_handshake(
                            sim, sock, cfg, cpu=host.cpu, account="proxy"
                        )
                        return channel

                    return upstream_factory

                router = None
                if grid:
                    # Leg 0 (home/namespace) keeps the patient hard-mount
                    # retry budget; data legs fail fast so a crashed
                    # backend surfaces as an RpcError the router can
                    # fail over from, instead of minutes of backoff.
                    legs = [
                        UpstreamSession(
                            sim, make_factory(tb.backends[b].name),
                            streams=streams, name=f"leg{b}",
                        )
                        if b == 0 else
                        UpstreamSession(
                            sim, make_factory(tb.backends[b].name),
                            retry_max=2, retry_base=0.25, retry_cap=2.0,
                            streams=streams, name=f"leg{b}",
                        )
                        for b in range(servers)
                    ]
                    meta = GridMetadataClient(
                        sim, host, "server", GRID_META_PORT
                    )
                    router = GridRouter(
                        sim, legs, meta, width=servers, replicas=replicas,
                        block_size=grid_block_size, obs=tb.obs,
                    )
                    router.add_root(node.fileid, grid_roots[i])
                proxy = SgfsClientProxy(
                    sim, host, CLIENT_PROXY_PORT,
                    upstream_factory=None if grid else make_factory("server"),
                    cost=cal.proxy_cost, account="proxy",
                    cache=_cache_config(tb, disk_cache),
                    disk=_cache_disk(tb, disk_cache),
                    blocking=True,
                    streams=streams,
                    pipeline_depth=pipeline_depth,
                    grid=router,
                )
                yield from proxy.start()
                if reconnect_interval:
                    # Periodic session refresh: tears the upstream TLS
                    # session down and re-handshakes (abbreviated, when
                    # tickets are on) until this client's workload ends,
                    # at which point the finally below interrupts it —
                    # no cycle may fire after the workload completes.
                    def cycler(proxy=proxy):
                        try:
                            while True:
                                yield sim.timeout(reconnect_interval)
                                yield from proxy.cycle_upstream()
                        except Interrupt:
                            return

                    cycler_proc = sim.spawn(
                        cycler(), name=f"session-cycler:{name}"
                    )
                cred = AuthSys(uid=JOB_ACCOUNT.uid, gid=JOB_ACCOUNT.gid,
                               machinename=name)
                client = yield from _kernel_client(
                    tb, name, CLIENT_PROXY_PORT, cred, cache_bytes,
                    host=host, root_fh=root_fh,
                )
            else:
                proxy = None
                cred = AuthSys(uid=owners[i].uid, gid=owners[i].gid,
                               machinename=name)
                client = yield from _kernel_client(
                    tb, "server", NFS_PORT, cred, cache_bytes,
                    host=host, root_fh=root_fh,
                    vers=NFS_V4 if setup == "nfs-v4" else pr.NFS_V3,
                )
            if fault_spec is not None:
                if fault_spec.client_timeo is not None and hasattr(client, "timeo"):
                    client.timeo = fault_spec.client_timeo
                if fault_spec.proxy_timeo is not None and proxy is not None:
                    proxy.upstream_timeo = fault_spec.proxy_timeo
            mount = Mount(f"{setup}:{name}", tb, client, client_proxy=proxy,
                          server_proxy=server_proxy)
            yield from workload.run(mount)
            yield from mount.finish()
            results[i] = FleetClientResult(
                name=name, start=start, end=sim.now,
                phases=dict(getattr(workload, "results", {})),
                bytes_moved=getattr(workload, "bytes_moved", None),
            )
        except BaseException as exc:  # surfaced after the join below
            errors.append(exc)
        finally:
            # Tear the session cycler down *before* signaling completion:
            # a cycle firing after the workload finished would quiesce a
            # session nothing will use again and perturb shutdown order.
            if cycler_proc is not None and cycler_proc.alive:
                cycler_proc.interrupt("client workload complete")
            done.put(i)

    for i in range(clients):
        proc = sim.spawn(client_proc(i), name=f"fleet-{names[i]}")
        # Namespace the client's span tracks: every process spawned
        # inside the subtree inherits this via sim.current.
        proc.trace_ns = names[i]

    def supervisor():
        for _ in range(clients):
            yield done.get()

    sim.run_until_complete(sim.spawn(supervisor(), name="fleet-join"))
    if plan is not None:
        plan.uninstall()
    if errors:
        raise errors[0]

    result = FleetResult(
        setup=setup, clients=clients,
        makespan=max(r.end for r in results) - t0,
        per_client=list(results),
    )
    result.stats.update(tb.obs.snapshot())
    if plan is not None:
        result.stats["faults"] = dict(plan.stats)
    if tracing:
        result.tracer = tb.tracer
    if profile:
        from repro.obs.profile import build_report

        kwargs = profile if isinstance(profile, dict) else {}
        result.profile = build_report(
            tb, t0=t0, t_end=max(r.end for r in results), **kwargs
        )
    return result
