"""Per-operation latency tracing.

Hooks an :class:`~repro.nfs.client.NfsClient`'s ``rpc_listeners`` and
records the virtual-time latency of every RPC by procedure, giving the
per-op views behind the aggregate figures: latency percentiles per NFS
procedure, call mix, and bytes moved.  Used by analysis scripts and the
trace tests; costs nothing when not installed.

Because the hook lives on the NfsClient rather than on its (replaceable)
RpcClient, the tracer keeps recording across hard-mount reconnects.
``install`` is idempotent — installing twice on the same client returns
the already-attached tracer — and ``uninstall`` detaches cleanly.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List

from repro.obs import percentile


@dataclass
class OpRecord:
    proc: str
    start: float
    latency: float
    args_bytes: int
    result_bytes: int


@dataclass
class TraceSummary:
    count: int
    total_latency: float
    min_latency: float
    p50: float
    p95: float
    max_latency: float

    @property
    def mean(self) -> float:
        return self.total_latency / self.count if self.count else 0.0


class RpcTracer:
    """Attach with :func:`install`; read ``records`` / ``summarize``."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.records: List[OpRecord] = []
        self._client = None

    # -- installation ----------------------------------------------------

    @classmethod
    def install(cls, client) -> "RpcTracer":
        """Attach to an NfsClient's RPC listener hook (idempotent)."""
        existing = getattr(client, "_rpc_tracer", None)
        if existing is not None and existing._client is client:
            return existing
        tracer = cls(client.sim)
        tracer._client = client
        client.rpc_listeners.append(tracer._on_rpc)
        client._rpc_tracer = tracer
        return tracer

    def uninstall(self) -> None:
        """Detach from the client; the collected records remain readable."""
        client = self._client
        if client is None:
            return
        self._client = None
        try:
            client.rpc_listeners.remove(self._on_rpc)
        except ValueError:
            pass
        if getattr(client, "_rpc_tracer", None) is self:
            client._rpc_tracer = None

    def _on_rpc(self, proc: str, start: float, latency: float,
                args_bytes: int, result_bytes: int) -> None:
        self.records.append(
            OpRecord(
                proc=proc,
                start=start,
                latency=latency,
                args_bytes=args_bytes,
                result_bytes=result_bytes,
            )
        )

    # -- analysis -----------------------------------------------------------

    def by_proc(self) -> Dict[str, List[OpRecord]]:
        out: Dict[str, List[OpRecord]] = defaultdict(list)
        for rec in self.records:
            out[rec.proc].append(rec)
        return dict(out)

    def summarize(self) -> Dict[str, TraceSummary]:
        out: Dict[str, TraceSummary] = {}
        for proc, recs in self.by_proc().items():
            lats = sorted(r.latency for r in recs)
            out[proc] = TraceSummary(
                count=len(lats),
                total_latency=sum(lats),
                min_latency=lats[0],
                p50=percentile(lats, 0.50),
                p95=percentile(lats, 0.95),
                max_latency=lats[-1],
            )
        return out

    def total_bytes(self) -> int:
        return sum(r.args_bytes + r.result_bytes for r in self.records)

    def format(self) -> str:
        lines = [f"{'proc':12s} {'count':>6s} {'mean':>9s} {'p50':>9s} "
                 f"{'p95':>9s} {'max':>9s}"]
        for proc, s in sorted(
            self.summarize().items(), key=lambda kv: -kv[1].total_latency
        ):
            lines.append(
                f"{proc:12s} {s.count:6d} {s.mean * 1000:8.2f}m "
                f"{s.p50 * 1000:8.2f}m {s.p95 * 1000:8.2f}m "
                f"{s.max_latency * 1000:8.2f}m"
            )
        return "\n".join(lines)
