"""Per-operation latency tracing.

Wraps the RPC client under an :class:`~repro.nfs.client.NfsClient` and
records the virtual-time latency of every RPC by procedure, giving the
per-op views behind the aggregate figures: latency percentiles per NFS
procedure, call mix, and bytes moved.  Used by analysis scripts and the
trace tests; costs nothing when not installed.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

from repro.nfs.protocol import Proc


@dataclass
class OpRecord:
    proc: str
    start: float
    latency: float
    args_bytes: int
    result_bytes: int


@dataclass
class TraceSummary:
    count: int
    total_latency: float
    min_latency: float
    p50: float
    p95: float
    max_latency: float

    @property
    def mean(self) -> float:
        return self.total_latency / self.count if self.count else 0.0


class RpcTracer:
    """Attach with :func:`install`; read ``records`` / ``summarize``."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.records: List[OpRecord] = []

    # -- installation ----------------------------------------------------

    @classmethod
    def install(cls, client) -> "RpcTracer":
        """Interpose on an NfsClient's RPC layer."""
        tracer = cls(client.sim)
        rpc = client.rpc
        original_call = rpc.call

        def traced_call(proc, args, cred=None):
            start = tracer.sim.now
            if cred is None:
                results = yield from original_call(proc, args)
            else:
                results = yield from original_call(proc, args, cred)
            try:
                name = Proc(proc).name
            except ValueError:
                name = str(proc)
            tracer.records.append(
                OpRecord(
                    proc=name,
                    start=start,
                    latency=tracer.sim.now - start,
                    args_bytes=len(args),
                    result_bytes=len(results),
                )
            )
            return results

        rpc.call = traced_call
        return tracer

    # -- analysis -----------------------------------------------------------

    def by_proc(self) -> Dict[str, List[OpRecord]]:
        out: Dict[str, List[OpRecord]] = defaultdict(list)
        for rec in self.records:
            out[rec.proc].append(rec)
        return dict(out)

    def summarize(self) -> Dict[str, TraceSummary]:
        out: Dict[str, TraceSummary] = {}
        for proc, recs in self.by_proc().items():
            lats = sorted(r.latency for r in recs)
            out[proc] = TraceSummary(
                count=len(lats),
                total_latency=sum(lats),
                min_latency=lats[0],
                p50=lats[len(lats) // 2],
                p95=lats[min(len(lats) - 1, int(len(lats) * 0.95))],
                max_latency=lats[-1],
            )
        return out

    def total_bytes(self) -> int:
        return sum(r.args_bytes + r.result_bytes for r in self.records)

    def format(self) -> str:
        lines = [f"{'proc':12s} {'count':>6s} {'mean':>9s} {'p50':>9s} "
                 f"{'p95':>9s} {'max':>9s}"]
        for proc, s in sorted(
            self.summarize().items(), key=lambda kv: -kv[1].total_latency
        ):
            lines.append(
                f"{proc:12s} {s.count:6d} {s.mean * 1000:8.2f}m "
                f"{s.p50 * 1000:8.2f}m {s.p95 * 1000:8.2f}m "
                f"{s.max_latency * 1000:8.2f}m"
            )
        return "\n".join(lines)
