"""Experiment runner.

Every run builds a **fresh** testbed (cold caches — the paper unmounts
and flushes between runs), mounts one setup, executes one workload, and
collects:

- per-phase and total virtual runtimes,
- the end-of-run write-back time (reported separately, like the paper),
- per-account CPU-utilization series from both hosts' ledgers
  (Figs. 5–6),
- cache/proxy statistics for analysis, populated from a
  :class:`repro.obs.Registry` snapshot (``telemetry=True``, the
  default) — every layer reports through the same registry instead of
  hand-collected dicts,
- optionally (``tracing=True``) the full causal span trace, exportable
  as Chrome-trace JSON via :meth:`ExperimentResult.trace_json`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.calibration import Calibration, DEFAULT_CALIBRATION
from repro.core.setups import SETUP_BUILDERS, Mount
from repro.core.topology import Testbed
from repro.faults import FaultPlan, resolve_fault_preset
from repro.harness.presets import resolve_preset
from repro.workloads.iozone import IOzoneReadReread
from repro.workloads.mab import ModifiedAndrewBenchmark
from repro.workloads.postmark import PostMark, PostMarkConfig
from repro.workloads.seismic import Seismic, SeismicConfig


@dataclass
class ExperimentResult:
    setup: str
    rtt: float
    total: float
    phases: Dict[str, float] = field(default_factory=dict)
    writeback_seconds: float = 0.0
    writeback_bytes: int = 0
    client_cpu: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    server_cpu: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    #: registry snapshot (component -> metric -> value) plus the legacy
    #: "nfs_client" / "client_proxy" / "server_proxy" aliases
    stats: Dict[str, object] = field(default_factory=dict)
    #: the testbed's span tracer when the run was traced (tracing=True)
    tracer: Optional[object] = None
    #: bottleneck-attribution report (repro.obs.profile) when the run
    #: was profiled (profile=True)
    profile: Optional[Dict[str, object]] = None

    @property
    def total_with_writeback(self) -> float:
        return self.total + self.writeback_seconds

    def trace_json(self, indent: Optional[int] = None) -> str:
        """The run's Chrome-trace export (requires ``tracing=True``)."""
        if self.tracer is None:
            raise ValueError("run was not traced; pass tracing=True")
        return self.tracer.to_json(indent=indent)

    def cpu_mean(self, side: str, account: str) -> float:
        series = (self.client_cpu if side == "client" else self.server_cpu).get(account, [])
        if not series:
            return 0.0
        return sum(pct for _t, pct in series) / len(series)


#: accounts whose utilization we sample (proxy == SGFS/GFS proxies and
#: their crypto; sfsd/sfssd == SFS daemons; ssh == tunnel endpoints).
_CPU_ACCOUNTS = ("proxy", "sfsd", "sfssd", "ssh", "sshd", "kernel-nfs", "app")


def run_workload(
    setup: str,
    workload_factory: Callable[[], object],
    rtt: float = 0.0,
    cal: Calibration = DEFAULT_CALIBRATION,
    setup_kwargs: Optional[dict] = None,
    prepare: Optional[Callable[[Testbed], None]] = None,
    cpu_window: float = 5.0,
    telemetry: bool = True,
    tracing: bool = False,
    profile: bool = False,
    faults=None,
    fault_seed: str = "faults",
) -> ExperimentResult:
    """Build testbed + mount + run one workload; return the result.

    Units: every duration in the result (``total``, ``phases``,
    ``writeback_seconds``, ``rtt``) is **virtual seconds** from the
    deterministic simulation — wall-clock time plays no part — and every
    size (``writeback_bytes``, byte counters in ``stats``) is bytes.

    Determinism: the run is a pure function of its arguments.  Two
    calls with identical arguments produce bit-identical results —
    same virtual times, same stats, same fault schedule — because all
    randomness flows from seeded DRBG streams and every queue in the
    stack is FIFO.  For N concurrent clients, see
    :func:`repro.harness.fleet.run_fleet`.

    ``telemetry`` (default on) populates ``result.stats`` from the
    cross-layer metrics registry; ``tracing`` additionally records
    causal spans (``result.tracer`` / ``result.trace_json()``).
    ``profile=True`` implies both and attaches the bottleneck
    attribution report (``result.profile``, see
    :func:`repro.obs.profile.build_report`); passing a dict instead of
    ``True`` forwards it as keyword arguments to ``build_report``
    (e.g. ``profile={"window": 2.0, "top": 5}``).  None of the three
    affects virtual-time results.

    ``faults`` turns the network adversarial: a preset name from
    :data:`repro.faults.FAULT_PRESETS` (e.g. ``"lossy-wan"``) or a
    :class:`repro.faults.FaultSpec`.  The schedule is fully determined
    by ``fault_seed``, so same-seed runs are byte-identical.  The plan's
    packet statistics land in ``result.stats["faults"]``.
    """
    if setup not in SETUP_BUILDERS:
        # Accept the CLI's preset dialect too (lan-/wan- prefix, -cache
        # suffix, the "nfs" alias) so both spellings work everywhere.
        try:
            setup, preset_rtt, preset_kwargs = resolve_preset(setup)
        except ValueError as exc:
            raise KeyError(
                f"{exc}; CLI presets like 'lan-nfs' or 'wan-sgfs-cache' "
                f"are accepted here as well"
            ) from None
        if rtt == 0.0:
            rtt = preset_rtt
        if preset_kwargs:
            merged = dict(preset_kwargs)
            merged.update(setup_kwargs or {})
            setup_kwargs = merged
    if profile:
        telemetry = tracing = True
    tb = Testbed.build(rtt=rtt, cal=cal, telemetry=telemetry, tracing=tracing,
                       profile=profile)
    workload = workload_factory()
    if prepare is not None:
        prepare(tb)
    elif hasattr(workload, "prepare"):
        workload.prepare(tb)
    mount: Mount = SETUP_BUILDERS[setup](tb, **(setup_kwargs or {}))

    plan = None
    fault_spec = resolve_fault_preset(faults)
    if fault_spec is not None:
        plan = FaultPlan(tb.sim, fault_spec, seed=fault_seed)
        plan.install(tb.net)
        handlers = {"server": (tb.crash_nfs_server, tb.restart_nfs_server)}
        sp = mount.server_proxy
        if sp is not None and hasattr(sp, "crash"):
            handlers["server-proxy"] = (sp.crash, sp.restart)
        plan.schedule(handlers)
        # give the retransmission timers teeth: silent loss must trigger
        # same-xid retries rather than waiting on the stream RTO chain
        if fault_spec.client_timeo is not None and hasattr(mount.client, "timeo"):
            mount.client.timeo = fault_spec.client_timeo
        if fault_spec.proxy_timeo is not None and mount.client_proxy is not None \
                and hasattr(mount.client_proxy, "upstream_timeo"):
            mount.client_proxy.upstream_timeo = fault_spec.proxy_timeo

    t0 = tb.sim.now
    tb.run(workload.run(mount), name=f"{setup}-workload")
    total = tb.sim.now - t0
    wb_seconds, _wb_blocks, wb_bytes = tb.run(mount.finish(), name="finish")
    t_end = tb.sim.now
    if plan is not None:
        plan.uninstall()

    result = ExperimentResult(
        setup=setup,
        rtt=rtt,
        total=total,
        phases=dict(getattr(workload, "results", {})),
        writeback_seconds=wb_seconds,
        writeback_bytes=wb_bytes,
    )
    for account in _CPU_ACCOUNTS:
        cl = tb.client.cpu.ledger.utilization_series(account, t_end, cpu_window)
        sv = tb.server.cpu.ledger.utilization_series(account, t_end, cpu_window)
        if any(pct for _t, pct in cl):
            result.client_cpu[account] = cl
        if any(pct for _t, pct in sv):
            result.server_cpu[account] = sv
    # The registry snapshot is the canonical stats export; the legacy
    # top-level aliases stay for callers that predate repro.obs.
    result.stats.update(tb.obs.snapshot())
    if plan is not None:
        result.stats["faults"] = dict(plan.stats)
    result.stats["nfs_client"] = mount.client.cache_stats()
    if mount.client_proxy is not None and hasattr(mount.client_proxy, "stats"):
        cp_stats = mount.client_proxy.stats
        if isinstance(cp_stats, dict):
            result.stats["client_proxy"] = dict(cp_stats)
    if mount.server_proxy is not None:
        sp_stats = getattr(mount.server_proxy, "stats", None)
        if hasattr(sp_stats, "granted"):
            result.stats["server_proxy"] = {
                "granted": sp_stats.granted,
                "denied": sp_stats.denied,
                "acl_answers": sp_stats.acl_answers,
            }
    if tracing:
        result.tracer = tb.tracer
    if profile:
        from repro.obs.profile import build_report

        kwargs = profile if isinstance(profile, dict) else {}
        result.profile = build_report(tb, t0=0.0, t_end=t_end, **kwargs)
    return result


# -- canned experiments ------------------------------------------------------


def run_iozone(setup: str, rtt: float = 0.0, file_size: int = 16 * 1024 * 1024,
               cal: Calibration = DEFAULT_CALIBRATION,
               setup_kwargs: Optional[dict] = None,
               **obs_kwargs) -> ExperimentResult:
    return run_workload(
        setup, lambda: IOzoneReadReread(file_size=file_size), rtt=rtt, cal=cal,
        setup_kwargs=setup_kwargs, **obs_kwargs,
    )


def run_iozone_wr(setup: str, rtt: float = 0.0, file_size: int = 256 * 1024,
                  cal: Calibration = DEFAULT_CALIBRATION,
                  setup_kwargs: Optional[dict] = None,
                  **obs_kwargs) -> ExperimentResult:
    from repro.workloads.iozone import IOzoneWriteRead

    return run_workload(
        setup, lambda: IOzoneWriteRead(file_size=file_size), rtt=rtt, cal=cal,
        setup_kwargs=setup_kwargs, **obs_kwargs,
    )


def run_postmark(setup: str, rtt: float = 0.0,
                 config: Optional[PostMarkConfig] = None,
                 cal: Calibration = DEFAULT_CALIBRATION,
                 setup_kwargs: Optional[dict] = None,
                 **obs_kwargs) -> ExperimentResult:
    return run_workload(
        setup, lambda: PostMark(config), rtt=rtt, cal=cal,
        setup_kwargs=setup_kwargs, **obs_kwargs,
    )


def run_mab(setup: str, rtt: float = 0.0,
            cal: Calibration = DEFAULT_CALIBRATION,
            setup_kwargs: Optional[dict] = None,
            **obs_kwargs) -> ExperimentResult:
    return run_workload(
        setup, ModifiedAndrewBenchmark, rtt=rtt, cal=cal,
        setup_kwargs=setup_kwargs, **obs_kwargs,
    )


def run_seismic(setup: str, rtt: float = 0.0,
                config: Optional[SeismicConfig] = None,
                cal: Calibration = DEFAULT_CALIBRATION,
                setup_kwargs: Optional[dict] = None,
                **obs_kwargs) -> ExperimentResult:
    return run_workload(
        setup, lambda: Seismic(config), rtt=rtt, cal=cal,
        setup_kwargs=setup_kwargs, **obs_kwargs,
    )
