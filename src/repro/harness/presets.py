"""Setup-preset names shared by the CLI and the experiment runner.

A preset is a setup name with an optional ``lan-``/``wan-``/``wan80-``
environment prefix (LAN = 0 RTT, WAN = 40 ms, WAN80 = 80 ms) and an
optional ``-cache`` suffix enabling the proxy disk cache — e.g.
``wan-sgfs-cache`` or ``lan-nfs`` (``nfs`` aliases ``nfs-v3``).
Historically only ``repro.cli`` spoke this dialect and
:func:`repro.harness.runner.run_workload` rejected it; both now accept
either spelling.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.setups import SETUP_BUILDERS

#: default WAN RTT for the ``wan-`` preset prefix (the paper's §6.4 uses
#: 40 ms as its canonical wide-area configuration).
WAN_RTT = 0.040

#: RTT for the ``wan80-`` prefix — the far end of the paper's Figure-8
#: RTT sweep, used by the multi-stream WAN throughput experiments.
WAN80_RTT = 0.080

_SETUP_ALIASES = {"nfs": "nfs-v3"}


def resolve_preset(name: str) -> Tuple[str, float, Optional[dict]]:
    """Resolve a setup preset name to ``(setup, rtt, setup_kwargs)``.

    Accepts a bare setup name (``sgfs``, ``nfs-v3``) or a preset with an
    optional ``lan-``/``wan-``/``wan80-`` environment prefix and an
    optional ``-cache`` suffix (proxy disk cache), e.g.
    ``wan-sgfs-cache``.  Raises ``ValueError`` on unknown names.
    """
    rest = name
    rtt = 0.0
    if rest.startswith("lan-"):
        rest = rest[len("lan-"):]
    elif rest.startswith("wan80-"):
        rest = rest[len("wan80-"):]
        rtt = WAN80_RTT
    elif rest.startswith("wan-"):
        rest = rest[len("wan-"):]
        rtt = WAN_RTT
    setup_kwargs: Optional[dict] = None
    if rest.endswith("-cache"):
        rest = rest[: -len("-cache")]
        setup_kwargs = {"disk_cache": True}
    rest = _SETUP_ALIASES.get(rest, rest)
    if rest not in SETUP_BUILDERS:
        raise ValueError(
            f"unknown setup {name!r}; setups are {sorted(SETUP_BUILDERS)} "
            f"with optional lan-/wan-/wan80- prefix and -cache suffix"
        )
    if setup_kwargs and rest in ("nfs-v3", "nfs-v4"):
        raise ValueError(f"{name!r}: -cache applies only to proxied setups")
    return rest, rtt, setup_kwargs
