"""Result formatting: the textual analogs of the paper's figures."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


def speedup(baseline: float, other: float) -> float:
    """How many times faster ``other`` is than ``baseline``."""
    if other <= 0:
        return float("inf")
    return baseline / other


def format_table(
    title: str,
    rows: Sequence[Tuple[str, Dict[str, float]]],
    columns: Sequence[str],
    unit: str = "s",
) -> str:
    """Render rows of named values as an aligned text table."""
    name_w = max([len(r[0]) for r in rows] + [len("setup")])
    col_w = {c: max(len(c), 10) for c in columns}
    out: List[str] = [title]
    header = "setup".ljust(name_w) + "  " + "  ".join(c.rjust(col_w[c]) for c in columns)
    out.append(header)
    out.append("-" * len(header))
    for name, values in rows:
        cells = []
        for c in columns:
            v = values.get(c)
            cells.append(("-" if v is None else f"{v:.2f}{unit}").rjust(col_w[c]))
        out.append(name.ljust(name_w) + "  " + "  ".join(cells))
    return "\n".join(out)


def format_series(
    title: str,
    series: Dict[str, Iterable[Tuple[float, float]]],
    x_label: str = "t(s)",
    y_label: str = "%CPU",
    max_points: int = 20,
) -> str:
    """Render utilization-over-time series as aligned text."""
    out: List[str] = [title, f"{x_label} -> {y_label}"]
    for name, points in series.items():
        pts = list(points)
        if len(pts) > max_points:
            step = len(pts) / max_points
            pts = [pts[int(i * step)] for i in range(max_points)]
        body = "  ".join(f"{t:.0f}:{pct:.1f}" for t, pct in pts)
        out.append(f"{name:12s} {body}")
    return "\n".join(out)
