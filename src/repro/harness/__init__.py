"""Experiment harness: builds testbeds, runs workloads, formats results.

Used by the ``benchmarks/`` suite to regenerate every figure of the
paper's evaluation, and usable directly::

    from repro.harness import run_iozone_lan
    table = run_iozone_lan(setups=["nfs-v3", "gfs", "sgfs-aes"])
"""

from repro.harness.fleet import FleetClientResult, FleetResult, run_fleet
from repro.harness.runner import (
    ExperimentResult,
    run_workload,
    run_iozone,
    run_iozone_wr,
    run_postmark,
    run_mab,
    run_seismic,
)
from repro.harness.tables import format_table, format_series, speedup
from repro.harness.trace import RpcTracer, TraceSummary

__all__ = [
    "ExperimentResult",
    "FleetClientResult",
    "FleetResult",
    "run_fleet",
    "run_workload",
    "run_iozone",
    "run_iozone_wr",
    "run_postmark",
    "run_mab",
    "run_seismic",
    "format_table",
    "format_series",
    "speedup",
    "RpcTracer",
    "TraceSummary",
]
