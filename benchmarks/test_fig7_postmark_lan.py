"""Figure 7: PostMark per-phase runtimes in LAN.

Paper parameters: 100 directories / 500 files / 1000 transactions,
file sizes 512 B – 16 KB.  Shape claims (§6.2.2):

- creation and deletion phases run near-native on every secure setup
  (gfs-ssh marginally worse),
- in the transaction phase only sgfs stays close to nfs-v3, beating
  sfs (~17 %) and gfs-ssh (~14 %) — we assert ordering plus generous
  bands around those gaps,
- nfs-v4 shows no advantage.
"""

from conftest import print_table

from repro.harness import run_postmark

SETUPS = ["nfs-v3", "nfs-v4", "sfs", "sgfs", "gfs-ssh"]
PHASES = ["creation", "transaction", "deletion"]


def run_figure7():
    return {setup: run_postmark(setup, rtt=0.0) for setup in SETUPS}


def test_fig7_postmark_lan(benchmark):
    results = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    rows = {name: dict(r.phases) for name, r in results.items()}
    print_table("Figure 7: PostMark phases, LAN", rows, PHASES + ["total"])
    benchmark.extra_info["phases_s"] = {
        name: {k: round(v, 2) for k, v in r.phases.items()}
        for name, r in results.items()
    }

    nfs = results["nfs-v3"].phases
    sgfs = results["sgfs"].phases
    sfs = results["sfs"].phases
    ssh = results["gfs-ssh"].phases

    # creation/deletion: all secure setups within ~2.5x of native
    for name in ("sfs", "sgfs", "gfs-ssh"):
        ph = results[name].phases
        assert ph["creation"] < 2.5 * nfs["creation"], name
        assert ph["deletion"] < 2.0 * nfs["deletion"], name
    # transaction phase: sgfs closest to native, beats sfs and gfs-ssh
    assert sgfs["transaction"] < sfs["transaction"]
    assert sgfs["transaction"] < ssh["transaction"]
    assert sgfs["transaction"] < 1.6 * nfs["transaction"]
    # the paper's 17% / 14% margins, with tolerance
    assert 1.05 < sfs["transaction"] / sgfs["transaction"] < 1.6
    assert 1.05 < ssh["transaction"] / sgfs["transaction"] < 2.2
    # nfs-v4 no advantage
    assert results["nfs-v4"].total >= results["nfs-v3"].total * 0.98
