"""Figure 9: Modified Andrew Benchmark phases, LAN and 40 ms WAN.

Paper's shape claims (§6.3.1):

- LAN: sgfs matches nfs-v3 on copy/stat/search and pays a modest
  overhead in the compile phase (~14 % in the paper),
- WAN (40 ms): sgfs with disk caching beats nfs-v3 by more than 4x
  overall in the paper (stat ~9x, search ~5x, compile ~8x); our
  kernel-client caches are somewhat more effective than the 2007
  client's, so we assert the conservative bands recorded in
  EXPERIMENTS.md (total > 2x, stat > 5x, compile > 2.5x),
- the end-of-run write-back is reported separately (paper: 51.2 s).
"""

from conftest import print_table

from repro.harness import run_mab

PHASES = ["copy", "stat", "search", "compile"]


def run_figure9():
    return {
        ("nfs-v3", "lan"): run_mab("nfs-v3", rtt=0.0),
        ("sgfs", "lan"): run_mab("sgfs", rtt=0.0),
        ("nfs-v3", "wan"): run_mab("nfs-v3", rtt=0.040),
        ("sgfs", "wan"): run_mab("sgfs", rtt=0.040, setup_kwargs={"disk_cache": True}),
    }


def test_fig9_mab(benchmark):
    results = benchmark.pedantic(run_figure9, rounds=1, iterations=1)
    rows = {f"{s} ({env})": dict(r.phases) for (s, env), r in results.items()}
    print_table("Figure 9: MAB phases, LAN + 40ms WAN", rows, PHASES + ["total"])
    wan_sgfs = results[("sgfs", "wan")]
    print(f"write-back at end of WAN run: {wan_sgfs.writeback_seconds:.1f}s "
          f"({wan_sgfs.writeback_bytes} bytes)")
    benchmark.extra_info["phases_s"] = {
        f"{s}-{env}": {k: round(v, 2) for k, v in r.phases.items()}
        for (s, env), r in results.items()
    }

    lan_n = results[("nfs-v3", "lan")].phases
    lan_s = results[("sgfs", "lan")].phases
    wan_n = results[("nfs-v3", "wan")].phases
    wan_s = results[("sgfs", "wan")].phases

    # LAN: first three phases close to native; compile overhead bounded
    for phase in ("copy", "stat", "search"):
        assert lan_s[phase] < 2.5 * lan_n[phase], phase
    assert lan_s["compile"] < 1.25 * lan_n["compile"]
    # WAN: sgfs wins decisively
    assert wan_n["total"] / wan_s["total"] > 2.0
    assert wan_n["stat"] / wan_s["stat"] > 5.0
    assert wan_n["search"] / wan_s["search"] > 2.0
    assert wan_n["compile"] / wan_s["compile"] > 2.5
    # sgfs WAN slowdown vs its own LAN run stays modest (paper: 2.5x)
    assert wan_s["total"] / lan_s["total"] < 4.0
    # write-back happened and is nonzero (temporaries reached the server)
    assert wan_sgfs.writeback_seconds > 0
