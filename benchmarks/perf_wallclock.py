"""Wall-clock performance harness — the repo's perf trajectory.

Times representative setups (``nfs-v3``, ``sgfs``, ``sgfs-aes``,
``gfs-ssh`` at LAN and 80 ms WAN) on the IOzone read/re-read workload
and writes ``BENCH_PERF.json``: wall seconds, virtual seconds, events
dispatched, heap pushes, and events/second per scenario.  Virtual time
and event counts are fully deterministic; wall seconds vary with the
machine, so trend them per-host.

The ``pinned`` scenario (``sgfs-aes``, LAN, 2 MB IOzone) runs with the
same configuration in every mode; its deterministic ``events_dispatched``
count is the regression guard CI enforces against the committed
``BENCH_PERF.json`` (``--check-against``, >10% growth fails).

Usage::

    PYTHONPATH=src python benchmarks/perf_wallclock.py            # full
    PYTHONPATH=src python benchmarks/perf_wallclock.py --smoke    # CI
    PYTHONPATH=src python benchmarks/perf_wallclock.py --smoke \
        --out /tmp/BENCH_PERF.json --check-against BENCH_PERF.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.harness import run_iozone

MB = 1024 * 1024

#: (label, setup, rtt_seconds) — representative corners of the paper's
#: evaluation: plain kernel NFS, the secure proxied stack with and
#: without AES, and the SSH-tunnel alternative, each at LAN and WAN.
SCENARIOS = (
    ("lan-nfs-v3", "nfs-v3", 0.0),
    ("lan-sgfs", "sgfs", 0.0),
    ("lan-sgfs-aes", "sgfs-aes", 0.0),
    ("lan-gfs-ssh", "gfs-ssh", 0.0),
    ("wan80-nfs-v3", "nfs-v3", 0.080),
    ("wan80-sgfs", "sgfs", 0.080),
    ("wan80-sgfs-aes", "sgfs-aes", 0.080),
    ("wan80-gfs-ssh", "gfs-ssh", 0.080),
)

#: The regression-guard scenario: identical config in full and smoke
#: modes, so the committed baseline is comparable across runs.
PINNED = ("pinned-iozone-lan-sgfs-aes", "sgfs-aes", 0.0, 2 * MB, 1 * MB)


def _measure(setup: str, rtt: float, file_size: int, cache_bytes: int) -> dict:
    t0 = time.perf_counter()
    r = run_iozone(setup, rtt=rtt, file_size=file_size,
                   setup_kwargs={"cache_bytes": cache_bytes}, telemetry=True)
    wall = time.perf_counter() - t0
    sim = r.stats["sim"]
    events = sim["events_dispatched"]
    return {
        "wall_seconds": round(wall, 4),
        "virtual_seconds": r.total,
        "events_dispatched": events,
        "heap_pushes": sim["heap_pushes"],
        "process_wakeups": sim["process_wakeups"],
        "events_per_sec": round(events / wall) if wall > 0 else 0,
    }


def run_benchmarks(smoke: bool) -> dict:
    file_size = 1 * MB if smoke else 16 * MB
    cache_bytes = file_size // 2
    out = {
        "benchmark": "perf_wallclock",
        "workload": "iozone-read-reread",
        "mode": "smoke" if smoke else "full",
        "file_size": file_size,
        "scenarios": {},
    }
    for label, setup, rtt in SCENARIOS:
        out["scenarios"][label] = _measure(setup, rtt, file_size, cache_bytes)
        print(f"  {label:18s} {_fmt(out['scenarios'][label])}")
    label, setup, rtt, fsize, cbytes = PINNED
    out["scenarios"][label] = _measure(setup, rtt, fsize, cbytes)
    print(f"  {label:18s} {_fmt(out['scenarios'][label])}")
    return out


def _fmt(m: dict) -> str:
    return (f"wall={m['wall_seconds']:7.3f}s virt={m['virtual_seconds']:10.3f}s "
            f"events={m['events_dispatched']:>8d} heap={m['heap_pushes']:>8d} "
            f"({m['events_per_sec']}/s)")


def check_regression(current: dict, baseline_path: str, tolerance: float = 0.10) -> int:
    """Compare the pinned scenario's deterministic event count against a
    committed baseline; >``tolerance`` growth is a failure."""
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    label = PINNED[0]
    base = baseline["scenarios"][label]["events_dispatched"]
    cur = current["scenarios"][label]["events_dispatched"]
    limit = base * (1.0 + tolerance)
    print(f"regression check [{label}]: events {cur} vs baseline {base} "
          f"(limit {limit:.0f})")
    if cur > limit:
        print(f"FAIL: events_dispatched regressed "
              f"{100.0 * (cur - base) / base:.1f}% (> {tolerance:.0%})")
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small file size for CI (pinned scenario unchanged)")
    parser.add_argument("--out", default="BENCH_PERF.json",
                        help="output path (default: BENCH_PERF.json)")
    parser.add_argument("--check-against", metavar="BASELINE",
                        help="fail if the pinned scenario's events_dispatched "
                             "regressed >10%% vs this committed BENCH_PERF.json")
    args = parser.parse_args(argv)
    print(f"perf_wallclock ({'smoke' if args.smoke else 'full'} mode)")
    result = run_benchmarks(smoke=args.smoke)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if args.check_against:
        return check_regression(result, args.check_against)
    return 0


if __name__ == "__main__":
    sys.exit(main())
