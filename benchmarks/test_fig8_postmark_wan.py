"""Figure 8: PostMark total runtime vs emulated network RTT.

Paper's shape claims (§6.2.2):

- native NFSv3 degrades roughly linearly with RTT,
- SGFS (disk caching + write-back) shows only a slow decrease in
  performance as latency grows,
- at 80 ms RTT SGFS is about two-fold faster than native NFS.
"""

from repro.harness import run_postmark

RTTS_MS = [5, 10, 20, 40, 80]


def run_figure8():
    series = {"nfs-v3": {}, "sgfs": {}}
    for rtt_ms in RTTS_MS:
        rtt = rtt_ms / 1000.0
        series["nfs-v3"][rtt_ms] = run_postmark("nfs-v3", rtt=rtt).total
        series["sgfs"][rtt_ms] = run_postmark(
            "sgfs", rtt=rtt, setup_kwargs={"disk_cache": True}
        ).total
    return series


def test_fig8_postmark_wan(benchmark):
    series = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    print("\n=== Figure 8: PostMark total runtime vs RTT ===")
    print(f"{'RTT':>6}  {'nfs-v3':>10}  {'sgfs':>10}  {'speedup':>8}")
    for rtt_ms in RTTS_MS:
        n, s = series["nfs-v3"][rtt_ms], series["sgfs"][rtt_ms]
        print(f"{rtt_ms:>4}ms  {n:>9.1f}s  {s:>9.1f}s  {n / s:>7.2f}x")
    benchmark.extra_info["series_s"] = {
        k: {str(r): round(v, 1) for r, v in vals.items()} for k, vals in series.items()
    }

    nfs, sgfs = series["nfs-v3"], series["sgfs"]
    assert nfs[80] / nfs[5] > 8.0, "nfs-v3 should scale steeply with RTT"
    # sgfs grows distinctly more slowly with RTT than nfs does
    assert sgfs[80] / sgfs[5] < 0.75 * (nfs[80] / nfs[5])
    # sgfs wins at every WAN latency, by >= ~2x at 80ms
    for rtt_ms in RTTS_MS:
        assert sgfs[rtt_ms] < nfs[rtt_ms], f"sgfs must win at {rtt_ms}ms"
    assert nfs[80] / sgfs[80] > 1.8
    # the gap widens with latency (crossover direction)
    assert nfs[80] / sgfs[80] > nfs[5] / sgfs[5]
