"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper — these isolate the mechanisms behind them:

1. blocking vs asynchronous RPC forwarding in the proxies (the paper's
   §6.2.1 explanation for trailing SFS by ~15 %; a multithreaded SGFS
   was "under development"),
2. disk caching on/off over the WAN (the entire Fig. 8–10 story),
3. write-back vs write-through caching (the Seismic §6.3.2 story),
4. the server-side ACL memory cache (§4.3 "for the reason of
   performance, the ACLs are cached in memory"),
5. periodic SSL renegotiation (§4.2): rekeying a session must cost
   little.
"""

from conftest import IOZONE_CACHE, IOZONE_FILE

from repro.core import Testbed, setup_sgfs
from repro.core.setups import USER_DN
from repro.harness import run_iozone, run_postmark, run_seismic
from repro.proxy.acl import AclEntry
from repro.workloads.iozone import IOzoneReadReread


def run_all_ablations():
    out = {}

    # 1. blocking vs async proxies (IOzone LAN)
    out["blocking"] = run_iozone(
        "sgfs-rc", rtt=0.0, file_size=IOZONE_FILE,
        setup_kwargs={"cache_bytes": IOZONE_CACHE},
    ).total
    out["async"] = run_iozone(
        "sgfs-rc", rtt=0.0, file_size=IOZONE_FILE,
        setup_kwargs={"cache_bytes": IOZONE_CACHE, "blocking": False},
    ).total
    out["sfs"] = run_iozone(
        "sfs", rtt=0.0, file_size=IOZONE_FILE,
        setup_kwargs={"cache_bytes": IOZONE_CACHE},
    ).total

    # 2. disk cache on/off at 40ms (PostMark)
    out["wan_cache_on"] = run_postmark(
        "sgfs", rtt=0.040, setup_kwargs={"disk_cache": True}
    ).total
    out["wan_cache_off"] = run_postmark(
        "sgfs", rtt=0.040, setup_kwargs={"disk_cache": False}
    ).total

    # 3. write-back vs write-through at 40ms (Seismic: absorbed temporaries)
    out["wb_writeback"] = run_seismic(
        "sgfs", rtt=0.040, setup_kwargs={"disk_cache": True}
    ).total
    out["wb_writethrough"] = run_seismic(
        "sgfs", rtt=0.040,
        setup_kwargs={"disk_cache": True, "write_back": False},
    ).total

    return out


def test_ablation_design_choices(benchmark):
    out = benchmark.pedantic(run_all_ablations, rounds=1, iterations=1)
    print("\n=== Ablations ===")
    for key, value in out.items():
        print(f"{key:18s} {value:9.2f}s")
    benchmark.extra_info["ablations_s"] = {k: round(v, 2) for k, v in out.items()}

    # 1. async forwarding recovers (most of) the gap to SFS
    assert out["async"] < out["blocking"]
    assert out["async"] <= out["sfs"] * 1.10
    # 2. the WAN win comes from the disk cache
    assert out["wan_cache_on"] < 0.75 * out["wan_cache_off"]
    # 3. write-back absorbs the temporaries write-through must ship
    assert out["wb_writeback"] < 0.80 * out["wb_writethrough"]


def test_ablation_acl_cache(benchmark):
    """Server-side ACL memory cache: ACCESS-heavy load with ACLs in force."""

    def run(acl_cache_enabled: bool) -> float:
        tb = Testbed.build()
        mount = setup_sgfs(tb, acl_cache_enabled=acl_cache_enabled)

        def job():
            cl = mount.client
            yield from cl.mkdir("/data")
            for i in range(30):
                yield from cl.write_file(f"/data/f{i}", b"x" * 512)
            # protect the directory: everything inherits this ACL
            mount.server_proxy.acls.set_acl(
                tb.fs.root.fileid, "data",
                [AclEntry(str(USER_DN), 0x3F)],
            )
            t0 = tb.sim.now
            # ACCESS storm: defeat the kernel client's own access cache
            # by spacing queries beyond its timeout
            for round_no in range(8):
                for i in range(30):
                    yield from cl.access(f"/data/f{i}", 0x1)
                yield tb.sim.timeout(31.0)
            return tb.sim.now - t0 - 8 * 31.0

        return tb.run(job())

    def run_both():
        return {"cached": run(True), "uncached": run(False)}

    out = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nACL cache on: {out['cached']:.3f}s  off: {out['uncached']:.3f}s")
    benchmark.extra_info.update({k: round(v, 3) for k, v in out.items()})
    assert out["cached"] < out["uncached"]


def test_ablation_renegotiation(benchmark):
    """Frequent rekeying must not measurably hurt an established session."""

    def run(interval):
        tb = Testbed.build()
        mount = setup_sgfs(tb, renegotiate_interval=interval)
        wl = IOzoneReadReread(file_size=IOZONE_FILE)
        wl.prepare(tb)
        tb.run(wl.run(mount))
        channel = mount.client_proxy._upstream
        return wl.results["total"], getattr(channel, "renegotiations", 0)

    def run_both():
        base, _ = run(None)
        rekey, renegs = run(0.05)  # rekey every 50 virtual ms — extreme
        return {"base": base, "rekey": rekey, "renegotiations": renegs}

    out = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nno-reneg: {out['base']:.3f}s  with {out['renegotiations']} renegotiations: "
          f"{out['rekey']:.3f}s")
    benchmark.extra_info.update(out)
    assert out["renegotiations"] >= 3, "renegotiation timer did not fire"
    assert out["rekey"] < out["base"] * 1.10, "rekeying should be cheap"
