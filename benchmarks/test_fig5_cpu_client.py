"""Figure 5: IOzone client-side CPU utilization of the user-level
proxy/daemon, sampled in 5-second windows over the run.

Paper's shape claims (§6.2.1):

- basic GFS proxy CPU is very low (average 0.6 %, under 1 %),
- SHA1-HMAC raises it to ~5 %; adding encryption ~8 %
  (AES slightly above RC4),
- the SFS daemon burns more than 30 % — more than any SGFS
  configuration.
"""

from conftest import IOZONE_CACHE, IOZONE_FILE

from repro.harness import run_iozone

SETUPS = ["gfs", "sgfs-sha", "sgfs-rc", "sgfs-aes", "sfs"]
ACCOUNT = {"sfs": "sfsd"}


def run_figure5():
    out = {}
    for setup in SETUPS:
        r = run_iozone(
            setup, rtt=0.0, file_size=IOZONE_FILE,
            setup_kwargs={"cache_bytes": IOZONE_CACHE},
        )
        account = ACCOUNT.get(setup, "proxy")
        out[setup] = {
            "mean": r.cpu_mean("client", account),
            "series": r.client_cpu.get(account, []),
        }
    return out


def test_fig5_cpu_client(benchmark):
    results = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    print("\n=== Figure 5: client-side user-level CPU (mean %, 5s windows) ===")
    for setup, data in results.items():
        series = "  ".join(f"{t:.0f}s:{pct:.1f}" for t, pct in data["series"][:10])
        print(f"{setup:10s} mean={data['mean']:5.1f}%   {series}")
    benchmark.extra_info["cpu_mean_pct"] = {
        k: round(v["mean"], 2) for k, v in results.items()
    }

    means = {k: v["mean"] for k, v in results.items()}
    assert means["gfs"] < 2.0, "plain proxy must be near-idle"
    # HMAC adds a few percent; encryption adds more
    assert means["gfs"] < means["sgfs-sha"] < means["sgfs-rc"] <= means["sgfs-aes"]
    assert 1.5 < means["sgfs-sha"] < 7.0
    assert 5.0 < means["sgfs-aes"] < 13.0
    # SFS burns far more CPU than any SGFS configuration
    assert means["sfs"] > 30.0
    assert means["sfs"] > 2.5 * means["sgfs-aes"]
