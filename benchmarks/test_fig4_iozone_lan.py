"""Figure 4: IOzone read/reread runtime on eight DFS setups in LAN.

Paper's shape claims (§6.2.1):

- every user-level file system is more than two-fold slower than the
  kernel NFS implementations under this worst-case workload,
- security overhead over plain gfs: ≈ +9 % with SHA1-HMAC only,
  ≈ +15 % with RC4+SHA1, ≈ +50 % with AES-256+SHA1,
- gfs-ssh is more than six-fold slower than gfs (double user-level
  forwarding),
- sgfs-rc is ~15 % slower than SFS (blocking vs asynchronous RPCs),
- nfs-v4 shows no advantage over nfs-v3.
"""

from conftest import IOZONE_CACHE, IOZONE_FILE, print_table, within_factor

from repro.harness import run_iozone

SETUPS = ["nfs-v3", "nfs-v4", "sfs", "gfs", "sgfs-sha", "sgfs-rc", "sgfs-aes", "gfs-ssh"]


def run_figure4():
    results = {}
    for setup in SETUPS:
        r = run_iozone(
            setup, rtt=0.0, file_size=IOZONE_FILE,
            setup_kwargs={"cache_bytes": IOZONE_CACHE},
        )
        results[setup] = r
    return results


def test_fig4_iozone_lan(benchmark):
    results = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    totals = {name: r.total for name, r in results.items()}
    print_table(
        "Figure 4: IOzone runtime, LAN",
        {name: {"runtime": t} for name, t in totals.items()},
        ["runtime"],
    )
    benchmark.extra_info["runtimes_s"] = {k: round(v, 3) for k, v in totals.items()}

    gfs = totals["gfs"]
    # user-level systems are >2x kernel NFS
    for setup in ("gfs", "sgfs-sha", "sgfs-rc", "sgfs-aes", "sfs", "gfs-ssh"):
        assert totals[setup] > 2.0 * totals["nfs-v3"], setup
    # the cipher ladder: +9% / +15% / +50% (generous tolerance band)
    assert within_factor(totals["sgfs-sha"] / gfs, 1.09, 1.06)
    assert within_factor(totals["sgfs-rc"] / gfs, 1.15, 1.08)
    assert within_factor(totals["sgfs-aes"] / gfs, 1.50, 1.10)
    # double forwarding: gfs-ssh >= ~6x gfs
    assert totals["gfs-ssh"] / gfs > 5.0
    # blocking SGFS trails async SFS by roughly the paper's 15%
    assert 1.05 < totals["sgfs-rc"] / totals["sfs"] < 1.45
    # nfs-v4 brings no advantage
    assert totals["nfs-v4"] >= totals["nfs-v3"] * 0.98
