"""Shared benchmark helpers.

Each benchmark regenerates one figure of the paper's evaluation: it runs
the same workload on the same setups, prints the figure's rows/series
(virtual-time seconds), attaches them to pytest-benchmark's
``extra_info``, and asserts the paper's *shape* claims — who wins, by
roughly what factor, where crossovers fall.  Absolute virtual times are
calibration-dependent and are not asserted beyond coarse sanity.
"""

from __future__ import annotations

from typing import Dict

#: IOzone scale used throughout: the paper's 512 MB file / 256 MB client
#: at 1:32 — the defining ratio (file = 2 × cache) is preserved.
IOZONE_FILE = 4 * 1024 * 1024
IOZONE_CACHE = 2 * 1024 * 1024


def print_table(title: str, rows: Dict[str, Dict[str, float]], columns) -> None:
    print(f"\n=== {title} ===")
    header = f"{'setup':12s}" + "".join(f"{c:>14s}" for c in columns)
    print(header)
    print("-" * len(header))
    for name, values in rows.items():
        cells = "".join(
            f"{values.get(c, float('nan')):>13.2f}s" for c in columns
        )
        print(f"{name:12s}{cells}")


def within_factor(value: float, target: float, tolerance: float) -> bool:
    """Is ``value`` within [target/tolerance, target*tolerance]?"""
    return target / tolerance <= value <= target * tolerance
