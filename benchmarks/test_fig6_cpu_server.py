"""Figure 6: IOzone server-side CPU utilization of the user-level
proxy/daemon.

Paper's shape claims (§6.2.1): server-side usage is even lower than the
client's for gfs / sgfs-sha / sgfs-rc (0.3 %, 1.5 %, 3.6 % average),
and SFS again exceeds 30 % — more than every SGFS configuration.
"""

from conftest import IOZONE_CACHE, IOZONE_FILE

from repro.harness import run_iozone

SETUPS = ["gfs", "sgfs-sha", "sgfs-rc", "sgfs-aes", "sfs"]
ACCOUNT = {"sfs": "sfssd"}


def run_figure6():
    out = {}
    for setup in SETUPS:
        r = run_iozone(
            setup, rtt=0.0, file_size=IOZONE_FILE,
            setup_kwargs={"cache_bytes": IOZONE_CACHE},
        )
        account = ACCOUNT.get(setup, "proxy")
        out[setup] = {
            "mean": r.cpu_mean("server", account),
            "series": r.server_cpu.get(account, []),
        }
    return out


def test_fig6_cpu_server(benchmark):
    results = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    print("\n=== Figure 6: server-side user-level CPU (mean %, 5s windows) ===")
    for setup, data in results.items():
        series = "  ".join(f"{t:.0f}s:{pct:.1f}" for t, pct in data["series"][:10])
        print(f"{setup:10s} mean={data['mean']:5.1f}%   {series}")
    benchmark.extra_info["cpu_mean_pct"] = {
        k: round(v["mean"], 2) for k, v in results.items()
    }

    means = {k: v["mean"] for k, v in results.items()}
    assert means["gfs"] < 2.0
    assert means["gfs"] < means["sgfs-sha"] < means["sgfs-rc"] <= means["sgfs-aes"]
    assert means["sfs"] > 30.0
    for setup in ("gfs", "sgfs-sha", "sgfs-rc", "sgfs-aes"):
        assert means[setup] < means["sfs"], setup
