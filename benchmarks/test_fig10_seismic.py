"""Figure 10: Seismic phases, LAN and 40 ms WAN.

Paper's shape claims (§6.3.2):

- LAN: sgfs performs very close to nfs-v3,
- WAN: sgfs shows **no slowdown** vs its LAN run (phase 2 actually runs
  faster in WAN because disk caching is off in LAN), while nfs-v3's
  stacking phase collapses (27 s -> 1021 s in the paper: strided
  re-reads of a file larger than client memory),
- overall sgfs is >5x faster in the paper's WAN (we assert > 2.5x, see
  EXPERIMENTS.md), with the compute-bound phase 4 flat everywhere,
- the end-of-run write-back is reported separately (paper: 14.2 s).
"""

from conftest import print_table

from repro.harness import run_seismic

PHASES = ["phase1", "phase2", "phase3", "phase4"]


def run_figure10():
    return {
        ("nfs-v3", "lan"): run_seismic("nfs-v3", rtt=0.0),
        ("sgfs", "lan"): run_seismic("sgfs", rtt=0.0),
        ("nfs-v3", "wan"): run_seismic("nfs-v3", rtt=0.040),
        ("sgfs", "wan"): run_seismic(
            "sgfs", rtt=0.040, setup_kwargs={"disk_cache": True}
        ),
    }


def test_fig10_seismic(benchmark):
    results = benchmark.pedantic(run_figure10, rounds=1, iterations=1)
    rows = {f"{s} ({env})": dict(r.phases) for (s, env), r in results.items()}
    print_table("Figure 10: Seismic phases, LAN + 40ms WAN", rows, PHASES + ["total"])
    wan_sgfs = results[("sgfs", "wan")]
    print(f"write-back at end of WAN run: {wan_sgfs.writeback_seconds:.1f}s")
    benchmark.extra_info["phases_s"] = {
        f"{s}-{env}": {k: round(v, 2) for k, v in r.phases.items()}
        for (s, env), r in results.items()
    }

    lan_n = results[("nfs-v3", "lan")].phases
    lan_s = results[("sgfs", "lan")].phases
    wan_n = results[("nfs-v3", "wan")].phases
    wan_s = results[("sgfs", "wan")].phases

    # LAN: sgfs close to native overall
    assert lan_s["total"] < 1.35 * lan_n["total"]
    # WAN: nfs phase 2 collapses; sgfs phase 2 does not
    assert wan_n["phase2"] > 5.0 * lan_n["phase2"]
    assert wan_s["phase2"] < 1.5 * lan_s["phase2"]
    # paper: sgfs phase 2 runs FASTER in WAN than LAN (disk cache off in LAN)
    assert wan_s["phase2"] < lan_s["phase2"]
    # sgfs shows no overall WAN slowdown
    assert wan_s["total"] <= 1.10 * lan_s["total"]
    # sgfs beats nfs substantially in WAN; phase2 dominates the win
    assert wan_n["total"] / wan_s["total"] > 2.5
    assert wan_n["phase2"] / wan_s["phase2"] > 10.0
    # the compute-bound final phase is flat across all four runs
    ref = lan_n["phase4"]
    for (s, env), r in results.items():
        assert abs(r.phases["phase4"] - ref) / ref < 0.15, (s, env)
    # write-back only carries the preserved results, not the temporaries
    assert wan_sgfs.writeback_seconds > 0
    assert wan_sgfs.writeback_bytes <= 8 * 1024 * 1024
