"""Scale-out: aggregate throughput and per-client latency vs. fleet size.

Not a paper figure — the paper measures one client per session — but the
experiment its grid-sharing story implies: N users mount one server
through independent (per-user secured, for SGFS) sessions and run the
IOzone read/reread workload concurrently over per-client directories.

Shape claims asserted:

- aggregate throughput rises with client count until the server
  saturates (near-linear early, flattening late);
- the crypto-heavy setup (sgfs-aes) saturates earlier and at a lower
  aggregate rate than the plain proxied setup (gfs) — the server CPU is
  busy with per-session encryption long before the plain stacks run out
  of server;
- same-seed fleet runs are bit-identical, per-client.

The LAN link is widened 8x from the calibrated testbed so the plain
setups are not link-capped in the measured range; the crypto ceiling is
what we are after, and it is CPU-, not network-, bound.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.calibration import DEFAULT_CALIBRATION
from repro.harness import run_fleet
from repro.workloads.iozone import IOzoneReadReread

SETUPS = ("nfs-v3", "gfs", "sgfs-aes")
CLIENT_COUNTS = (1, 2, 4, 8, 16, 32)
FILE_SIZE = 128 * 1024  # per client; ratios are size-independent
FAT_LAN = dataclasses.replace(
    DEFAULT_CALIBRATION, lan_bandwidth=DEFAULT_CALIBRATION.lan_bandwidth * 8
)


def _throughput_curve(setup: str) -> dict:
    """client count -> aggregate MB/s (and per-client seconds)."""
    curve = {}
    for n in CLIENT_COUNTS:
        r = run_fleet(
            setup, lambda: IOzoneReadReread(file_size=FILE_SIZE),
            clients=n, cal=FAT_LAN,
        )
        curve[n] = {
            "throughput": r.aggregate_throughput(2 * FILE_SIZE) / 1e6,
            "per_client_mean": r.mean_client_seconds,
        }
    return curve


@pytest.fixture(scope="module")
def curves():
    return {setup: _throughput_curve(setup) for setup in SETUPS}


def test_scaleout_table(curves):
    print("\n=== Scale-out: aggregate MB/s vs clients (IOzone read/reread) ===")
    header = f"{'setup':12s}" + "".join(f"{n:>9d}" for n in CLIENT_COUNTS)
    print(header)
    print("-" * len(header))
    for setup in SETUPS:
        cells = "".join(
            f"{curves[setup][n]['throughput']:>9.1f}" for n in CLIENT_COUNTS
        )
        print(f"{setup:12s}{cells}")


def test_throughput_rises_until_saturation(curves):
    for setup in SETUPS:
        c = curves[setup]
        # Early range is near-linear: 4 clients beat 1 by well over 2x.
        assert c[4]["throughput"] > 2.0 * c[1]["throughput"], setup
        # Monotone non-decreasing within measurement slack.
        for lo, hi in zip(CLIENT_COUNTS, CLIENT_COUNTS[1:]):
            assert c[hi]["throughput"] > 0.95 * c[lo]["throughput"], (setup, lo, hi)
        # Declining returns: the late doubling gains less than the early one.
        early = c[4]["throughput"] / c[2]["throughput"]
        late = c[32]["throughput"] / c[16]["throughput"]
        assert late < early, (setup, early, late)


def test_crypto_saturates_earlier_and_lower(curves):
    gfs, aes = curves["gfs"], curves["sgfs-aes"]
    # Lower ceiling: the AES fleet's saturated rate is far below gfs's.
    assert aes[32]["throughput"] < 0.5 * gfs[32]["throughput"]
    # Earlier knee: going 8 -> 16 clients still pays for gfs but is
    # nearly flat for sgfs-aes (server CPU already full of crypto).
    gain_gfs = gfs[16]["throughput"] / gfs[8]["throughput"]
    gain_aes = aes[16]["throughput"] / aes[8]["throughput"]
    assert gain_aes < gain_gfs
    # Scaling efficiency at 16 clients is much worse under AES.
    eff_gfs = gfs[16]["throughput"] / (16 * gfs[1]["throughput"])
    eff_aes = aes[16]["throughput"] / (16 * aes[1]["throughput"])
    assert eff_aes < eff_gfs


def test_per_client_latency_grows_under_load(curves):
    # Each client runs the same workload; with a contended server the
    # mean per-client runtime must grow with fleet size.
    for setup in SETUPS:
        c = curves[setup]
        assert c[16]["per_client_mean"] > c[1]["per_client_mean"], setup


def test_profile_attributes_flattening_to_crypto():
    """ISSUE 6 acceptance: on the 8-client sgfs-aes scale-out scenario
    the profiler must attribute the majority of server-side CPU to
    crypto, with concrete percentages — the computed explanation for
    why the AES curve flattens in the table above."""
    r = run_fleet(
        "sgfs-aes", lambda: IOzoneReadReread(file_size=FILE_SIZE),
        clients=8, cal=FAT_LAN, profile=True,
    )
    report = r.profile
    server = report["cpu"]["server"]
    print("\n=== 8-client sgfs-aes server CPU attribution ===")
    print(f"busy {server['busy_pct_of_makespan']:.1f}% of makespan; "
          f"crypto {server['crypto_pct_of_busy']:.1f}% of busy "
          f"({server['crypto_pct_of_makespan']:.1f}% of makespan)")
    for key, row in sorted(server["accounts"].items(),
                           key=lambda kv: -kv[1]["seconds"]):
        print(f"  {key:42s} {row['seconds']:.6f}s {row['pct_of_busy']:5.1f}%")
    # The server is the bottleneck host and crypto dominates its CPU.
    assert server["crypto_pct_of_busy"] > 50.0
    assert server["crypto_seconds"] > 0.0
    # Crypto sub-accounts are individually attributed (hierarchical keys).
    assert any("/seal:" in k or "/handshake" in k for k in server["accounts"])
    # The fleet report carries per-client sections for all 8 members.
    assert set(report["clients"]) >= {f"c{i}" for i in range(8)}


def test_profile_report_byte_identical_same_seed():
    from repro.obs.profile import report_json

    kw = dict(clients=8, cal=FAT_LAN, profile=True)
    a = run_fleet("sgfs-aes", lambda: IOzoneReadReread(file_size=FILE_SIZE), **kw)
    b = run_fleet("sgfs-aes", lambda: IOzoneReadReread(file_size=FILE_SIZE), **kw)
    assert report_json(a.profile) == report_json(b.profile)
    from repro.obs.profile import collapsed_stacks

    assert collapsed_stacks(a.tracer) == collapsed_stacks(b.tracer)


def test_fleet_bit_identical_same_seed():
    kw = dict(clients=8, cal=FAT_LAN)
    a = run_fleet("sgfs-aes", lambda: IOzoneReadReread(file_size=FILE_SIZE), **kw)
    b = run_fleet("sgfs-aes", lambda: IOzoneReadReread(file_size=FILE_SIZE), **kw)
    assert a.makespan == b.makespan
    for ca, cb in zip(a.per_client, b.per_client):
        assert (ca.name, ca.start, ca.end, ca.phases) == (
            cb.name, cb.start, cb.end, cb.phases
        )
    assert a.stats == b.stats


# -- multi-core server: breaking the crypto ceiling ---------------------------


def _aes_fleet(clients, cores, **kw):
    return run_fleet(
        "sgfs-aes", lambda: IOzoneReadReread(file_size=FILE_SIZE),
        clients=clients, cal=FAT_LAN, server_cores=cores, **kw,
    )


def test_multicore_table():
    print("\n=== sgfs-aes aggregate MB/s vs clients x server cores ===")
    counts = (1, 2, 4, 8, 16, 32)
    cores_list = (1, 2, 4, 8)
    header = f"{'cores':8s}" + "".join(f"{n:>9d}" for n in counts)
    print(header)
    print("-" * len(header))
    for cores in cores_list:
        row = []
        for n in counts:
            r = _aes_fleet(n, cores)
            row.append(r.aggregate_throughput(2 * FILE_SIZE) / 1e6)
        print(f"{cores:<8d}" + "".join(f"{v:>9.1f}" for v in row))


def test_four_cores_triple_the_crypto_ceiling():
    """ISSUE 7 acceptance: a 16-client fleet on a 4-core server must
    push at least 3x the aggregate throughput of the saturated 8-client
    single-core baseline -- the crypto ceiling was the serialized server
    CPU, and multi-core dispatch with per-session affinity breaks it."""
    base = _aes_fleet(8, 1)
    wide = _aes_fleet(16, 4)
    t_base = base.aggregate_throughput(2 * FILE_SIZE)
    t_wide = wide.aggregate_throughput(2 * FILE_SIZE)
    print(f"\n8c/1core {t_base / 1e6:.1f} MB/s -> "
          f"16c/4core {t_wide / 1e6:.1f} MB/s ({t_wide / t_base:.2f}x)")
    assert t_wide >= 3.0 * t_base


def test_multicore_profile_reports_per_core_rows():
    r = run_fleet(
        "sgfs-aes", lambda: IOzoneReadReread(file_size=FILE_SIZE),
        clients=16, cal=FAT_LAN, server_cores=4, profile=True,
    )
    server = r.profile["cpu"]["server"]
    assert server["cores"] == 4
    assert set(server["per_core"]) == {"0", "1", "2", "3"}
    # Affinity spreads 16 sessions over 4 cores: every core does real
    # work, none hogs it all.
    busys = [server["per_core"][k]["busy_seconds"] for k in "0123"]
    assert min(busys) > 0.25 * max(busys)
    # busy can exceed one makespan's worth now; per-core never can.
    for k in "0123":
        assert server["per_core"][k]["utilization_pct"] <= 100.0


def test_multicore_scaleout_bit_identical():
    a = _aes_fleet(16, 4)
    b = _aes_fleet(16, 4)
    assert a.makespan == b.makespan
    assert a.stats == b.stats


def test_resumption_under_reconnect_churn():
    """ISSUE 7 acceptance: a reconnect-heavy fleet with session tickets
    resumes sessions instead of repeating the RSA handshake."""
    r = run_fleet(
        "sgfs-aes", lambda: IOzoneReadReread(file_size=FILE_SIZE),
        clients=8, cal=FAT_LAN, server_cores=4,
        session_tickets=True, reconnect_interval=0.01,
    )
    tls = r.stats["tls"]
    suite = "aes-256-cbc-sha1"
    resumed = tls[f"resumptions{{role=server,suite={suite}}}"]
    full = tls[f"full_handshakes{{role=server,suite={suite}}}"]
    print(f"\nreconnect churn: {resumed} resumptions, {full} full handshakes")
    assert resumed > 0
    assert full == 8  # only the initial connections pay for RSA
