"""Scale-out benchmark — the server-crypto ceiling, before and after.

Runs pinned sgfs-aes fleet scenarios on the widened (8x) LAN and writes
``BENCH_SCALEOUT.json``:

- ``base-8c-1core``  — the saturated single-core baseline: 8 clients
  against one serialized server CPU, aggregate throughput capped by
  per-session sealing;
- ``wide-16c-4core`` — 16 clients against a 4-core server with
  per-session crypto affinity; the headline ``throughput_ratio_vs_base``
  is the acceptance number (must be >= 3.0);
- ``resume-8c-4core`` — a reconnect-heavy fleet with session tickets:
  every reconnect takes the abbreviated handshake, so only the initial
  connections pay the full RSA exchange;
- ``grid-24c-{1,2,4}s`` — the sharded data plane: 24 clients running the
  verified write/read workload against 1, 2, and 4 single-core backends
  with 32 KB stripe blocks.  The single-backend run saturates the one
  server core; striping spreads block I/O (and its sealing) across the
  backends, and ``grid_ratio_4s_vs_1s`` (must be >= 1.8) is the
  scale-out acceptance number;
- ``wan-*`` — the WAN transfer engine: a 16 MB sgfs-aes IOzone through
  the caching proxy on the LAN and at 80 ms RTT with streams 1 and 4.
  Without the engine every cache-miss block costs a round trip; with 4
  sub-channels and RTT-sized read-ahead windows the 80 ms run must stay
  within 2x of LAN throughput (``wan_ratio_s4_vs_lan`` >= 0.5).
  ``wan-80ms-postmark-s{1,4}`` run PostMark against a capacity-squeezed
  proxy cache so eviction write-back traffic crosses the WAN mid-run;
  the windowed write-behind + compound envelopes must raise the
  transaction rate (``postmark_txn_gain_s4_vs_s1`` > 1.0);
- ``authz-1e6`` — the population-scale identity layer: hashed-gridmap
  lookup cost probed at 10^3 and 10^6 entries.  The wall-clock times
  are printed but **not** recorded (they are not virtual-time); what is
  recorded is the robust boolean ``o1_lookup`` — the 10^6 lookups must
  stay within 8x of the 10^3 lookups (a hash map sits near 1x, a linear
  scan near 1000x) — plus the deterministic resolution check;
- ``churn-8c-{full,resumed,delegated}`` — session-establishment
  throughput under login storms: 8 staggered long-lived
  :class:`~repro.workloads.churn.SessionChurn` clients cycling their
  upstream sessions.  ``full`` pays the complete RSA handshake on every
  reconnect; ``resumed`` turns session tickets on (exactly 8 full
  handshakes, the initial logins); ``delegated`` additionally
  authenticates with short-lived limited proxy credentials that expire
  mid-run, so reconnects interleave re-delegations with abbreviated
  handshakes while the server proxy's epoch-stamped authz cache
  revalidates under gridmap churn (``authz_stale`` > 0).

Every recorded value is virtual-time (or a robust boolean) and
therefore deterministic: the committed snapshot must match a fresh run
bit-for-bit (CI enforces this with ``repro bench-diff``), and
``--check`` additionally fails the build if the multi-core speedup ever
drops below 3x, the 4-backend grid speedup below 1.8x, the gridmap
lookup stops being O(1), or the churn fleets stop resuming / renewing.

Usage::

    PYTHONPATH=src python benchmarks/bench_scaleout.py
    PYTHONPATH=src python benchmarks/bench_scaleout.py \
        --out /tmp/BENCH_SCALEOUT.json --check
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time

from repro.core.calibration import DEFAULT_CALIBRATION
from repro.gsi import Gridmap
from repro.harness import run_fleet, run_iozone, run_postmark
from repro.workloads.churn import SessionChurn
from repro.workloads.iozone import IOzoneReadReread, IOzoneWriteRead

FILE_SIZE = 128 * 1024  # per client, read + reread
FAT_LAN = dataclasses.replace(
    DEFAULT_CALIBRATION, lan_bandwidth=DEFAULT_CALIBRATION.lan_bandwidth * 8
)
SUITE = "aes-256-cbc-sha1"
MIN_RATIO = 3.0

# Grid scenarios: enough clients that one single-core backend saturates
# (24 latency-capped clients demand ~2x what one core can seal), files
# large enough to amortize the per-backend TLS handshakes, and a client
# cache small enough that both read passes hit the protocol.
GRID_CLIENTS = 24
GRID_FILE_SIZE = 1024 * 1024  # per client, written + read + reread
GRID_BLOCK = 32 * 1024
MIN_GRID_RATIO = 1.8

# WAN transfer engine scenarios: a single large-file session through the
# caching proxy (prepared server-side, so the first read pass crosses
# the wire), on the stock calibration — WAN latency, not LAN bandwidth,
# is the quantity under test.
WAN_RTT = 0.080
WAN_FILE_SIZE = 16 * 1024 * 1024
WAN_STREAMS = 4
MIN_WAN_RATIO = 0.5
#: proxy cache capacity for the PostMark WAN runs — small enough that
#: eviction write-back traffic crosses the WAN during the timed phases
PM_CACHE_CAPACITY = 256 * 1024

# Population-scale authz: probe the hashed gridmap at two sizes three
# decades apart.  min-of-repeats wall clock with an 8x slack makes the
# O(1) verdict robust (a linear scan would blow the bound by ~100x).
AUTHZ_SMALL = 1_000
AUTHZ_LARGE = 1_000_000
AUTHZ_PROBES = 64
AUTHZ_ROUNDS = 200
AUTHZ_REPEATS = 5
AUTHZ_SLACK = 8.0

# Session churn: 8 clients staggered into a login storm, each a
# long-lived light-I/O session cycling its upstream every 1.5 virtual
# seconds; the delegated variant's 4 s proxy lifetime forces several
# renewals inside the 12 s run.
CHURN_CLIENTS = 8
CHURN_DURATION = 12.0
CHURN_PERIOD = 0.5
CHURN_STAGGER = 0.25
CHURN_RECONNECT = 1.5
CHURN_DELEGATION = 4.0


def _fleet(clients: int, cores: int, **kw):
    return run_fleet(
        "sgfs-aes", lambda: IOzoneReadReread(file_size=FILE_SIZE),
        clients=clients, cal=FAT_LAN, server_cores=cores, **kw,
    )


def _grid_fleet(servers: int):
    return run_fleet(
        "sgfs-aes", lambda: IOzoneWriteRead(file_size=GRID_FILE_SIZE),
        clients=GRID_CLIENTS, cal=FAT_LAN, server_cores=1,
        servers=servers, grid_block_size=GRID_BLOCK,
        setup_kwargs={"cache_bytes": 64 * 1024},
    )


def _wan_iozone(rtt: float, streams: int):
    return run_iozone(
        "sgfs-aes", rtt=rtt, file_size=WAN_FILE_SIZE,
        setup_kwargs={"disk_cache": True, "streams": streams},
        telemetry=True,
    )


def _wan_measure(result, rtt: float, streams: int) -> dict:
    pc = result.stats.get("proxy.client", {})
    bulk_calls = sum(
        v for k, v in pc.items() if k.startswith("stream_calls{")
    )
    return {
        "rtt": rtt,
        "streams": streams,
        "file_size": WAN_FILE_SIZE,
        "virtual_seconds": result.total,
        "read_seconds": result.phases["read"],
        "reread_seconds": result.phases["reread"],
        # read + reread passes over the file
        "mb_per_sec": round(2 * WAN_FILE_SIZE / result.total / 1e6, 3),
        "stream_bulk_calls": bulk_calls,
    }


def _wan_postmark(streams: int):
    return run_postmark(
        "sgfs-aes", rtt=WAN_RTT,
        setup_kwargs={"disk_cache": True, "streams": streams,
                      "cache_capacity": PM_CACHE_CAPACITY},
        telemetry=True,
    )


def _pm_measure(result, streams: int) -> dict:
    pc = result.stats.get("proxy.client", {})
    txn_seconds = result.phases["transaction"]
    return {
        "rtt": WAN_RTT,
        "streams": streams,
        "cache_capacity": PM_CACHE_CAPACITY,
        "virtual_seconds": result.total,
        "transaction_seconds": txn_seconds,
        # 1000 transactions is the PostMark default this run uses
        "txn_per_sec": round(1000 / txn_seconds, 3),
        "writeback_blocks": pc.get("writeback_blocks", 0),
        "compound_envelopes": pc.get("compound_envelopes", 0),
    }


def _grid_measure(result, servers: int) -> dict:
    stats = result.stats.get("grid", {})
    return {
        "clients": GRID_CLIENTS,
        "servers": servers,
        "server_cores": 1,
        "makespan_virtual_seconds": result.makespan,
        # measured from per-client byte totals (not the per-client
        # estimate — see FleetResult.aggregate_throughput)
        "aggregate_mb_per_sec": round(result.aggregate_throughput() / 1e6, 3),
        "mean_client_seconds": result.mean_client_seconds,
        "striped_reads": stats.get("striped_reads", 0),
        "striped_writes": stats.get("striped_writes", 0),
    }


def _population_gridmap(entries: int) -> Gridmap:
    # Raw dict population: DN parsing 10^6 names would dominate setup
    # without touching the quantity under test (hash lookup cost).
    gm = Gridmap()
    gm.entries = {
        f"/C=US/O=UFL/OU=pop/CN=User {i:07d}": f"acct{i % 97:02d}"
        for i in range(entries)
    }
    return gm


def _lookup_seconds(gm: Gridmap, entries: int) -> float:
    """Best-of-repeats wall seconds for AUTHZ_ROUNDS×AUTHZ_PROBES lookups."""
    probes = [
        f"/C=US/O=UFL/OU=pop/CN=User {(i * 7919) % entries:07d}"
        for i in range(AUTHZ_PROBES)
    ]
    lookup = gm.lookup_str
    best = float("inf")
    for _ in range(AUTHZ_REPEATS):
        t0 = time.perf_counter()
        for _ in range(AUTHZ_ROUNDS):
            for dn in probes:
                lookup(dn)
        best = min(best, time.perf_counter() - t0)
    return best


def _authz_measure() -> dict:
    small = _population_gridmap(AUTHZ_SMALL)
    large = _population_gridmap(AUTHZ_LARGE)
    resolved = (
        small.lookup_str(f"/C=US/O=UFL/OU=pop/CN=User {0:07d}") == "acct00"
        and large.lookup_str(
            f"/C=US/O=UFL/OU=pop/CN=User {AUTHZ_LARGE - 1:07d}"
        ) == f"acct{(AUTHZ_LARGE - 1) % 97:02d}"
        and large.lookup_str("/C=US/O=UFL/OU=pop/CN=Nobody") is None
    )
    t_small = _lookup_seconds(small, AUTHZ_SMALL)
    t_large = _lookup_seconds(large, AUTHZ_LARGE)
    # Wall-clock numbers are printed for the operator but kept out of
    # the JSON — only virtual-time and robust booleans are committed.
    n = AUTHZ_ROUNDS * AUTHZ_PROBES
    print(f"  authz lookup: {AUTHZ_SMALL} entries "
          f"{t_small / n * 1e9:7.1f} ns/lookup, "
          f"{AUTHZ_LARGE} entries {t_large / n * 1e9:7.1f} ns/lookup "
          f"({t_large / t_small:.2f}x, bound {AUTHZ_SLACK:.0f}x)")
    return {
        "small_entries": AUTHZ_SMALL,
        "large_entries": AUTHZ_LARGE,
        "probes_per_round": AUTHZ_PROBES,
        "rounds": AUTHZ_ROUNDS,
        "o1_lookup": bool(t_large <= t_small * AUTHZ_SLACK),
        "lookups_resolved": bool(resolved),
    }


def _churn_fleet(**kw):
    return run_fleet(
        "sgfs-aes",
        lambda: SessionChurn(duration=CHURN_DURATION, period=CHURN_PERIOD),
        clients=CHURN_CLIENTS, cal=FAT_LAN, server_cores=1,
        stagger=CHURN_STAGGER, reconnect_interval=CHURN_RECONNECT, **kw,
    )


def _churn_measure(result, label: str) -> dict:
    tls = result.stats.get("tls", {})
    gsi = result.stats.get("gsi", {})
    psrv = result.stats.get("proxy.server", {})
    # ``handshakes`` counts every establishment; the full/resumed split
    # is only on the wire (and counted) when tickets are negotiated.
    total = tls.get(f"handshakes{{role=server,suite={SUITE}}}", 0)
    full = tls.get(f"full_handshakes{{role=server,suite={SUITE}}}", 0)
    resumed = tls.get(f"resumptions{{role=server,suite={SUITE}}}", 0)
    return {
        "mode": label,
        "clients": CHURN_CLIENTS,
        "duration": CHURN_DURATION,
        "reconnect_interval": CHURN_RECONNECT,
        "makespan_virtual_seconds": result.makespan,
        "tls_handshakes": total,
        "tls_full_handshakes": full,
        "tls_resumptions": resumed,
        "sessions_per_vsec": round(total / result.makespan, 3),
        "delegations": gsi.get("delegations", 0),
        "renewals": gsi.get("renewals", 0),
        "authz_hits": psrv.get("authz_cache_hits", 0),
        "authz_misses": psrv.get("authz_cache_misses", 0),
        "authz_stale": psrv.get("authz_cache_stale", 0),
    }


def _measure(result, clients: int, cores: int) -> dict:
    tls = result.stats.get("tls", {})
    return {
        "clients": clients,
        "server_cores": cores,
        "makespan_virtual_seconds": result.makespan,
        "aggregate_mb_per_sec": round(
            result.aggregate_throughput(2 * FILE_SIZE) / 1e6, 3
        ),
        "mean_client_seconds": result.mean_client_seconds,
        "tls_full_handshakes": tls.get(
            f"full_handshakes{{role=server,suite={SUITE}}}", 0
        ),
        "tls_resumptions": tls.get(
            f"resumptions{{role=server,suite={SUITE}}}", 0
        ),
    }


def run_benchmarks() -> dict:
    out = {
        "benchmark": "bench_scaleout",
        "workload": "iozone-read-reread",
        "setup": "sgfs-aes",
        "file_size": FILE_SIZE,
        "lan_bandwidth_multiplier": 8,
        "scenarios": {},
    }
    base = _fleet(8, 1)
    out["scenarios"]["base-8c-1core"] = _measure(base, 8, 1)
    wide = _fleet(16, 4)
    out["scenarios"]["wide-16c-4core"] = _measure(wide, 16, 4)
    resume = _fleet(8, 4, session_tickets=True, reconnect_interval=0.01)
    out["scenarios"]["resume-8c-4core"] = _measure(resume, 8, 4)
    out["scenarios"]["resume-8c-4core"]["session_tickets"] = True
    out["scenarios"]["resume-8c-4core"]["reconnect_interval"] = 0.01
    for servers in (1, 2, 4):
        grid = _grid_fleet(servers)
        out["scenarios"][f"grid-24c-{servers}s"] = _grid_measure(grid, servers)
    out["scenarios"]["authz-1e6"] = _authz_measure()
    out["scenarios"]["churn-8c-full"] = _churn_measure(
        _churn_fleet(), "full")
    out["scenarios"]["churn-8c-resumed"] = _churn_measure(
        _churn_fleet(session_tickets=True), "resumed")
    out["scenarios"]["churn-8c-delegated"] = _churn_measure(
        _churn_fleet(session_tickets=True,
                     delegation_lifetime=CHURN_DELEGATION), "delegated")
    out["scenarios"]["churn-8c-delegated"]["delegation_lifetime"] = (
        CHURN_DELEGATION)
    out["scenarios"]["wan-lan-16m"] = _wan_measure(
        _wan_iozone(0.0, 1), 0.0, 1)
    for streams in (1, WAN_STREAMS):
        out["scenarios"][f"wan-80ms-16m-s{streams}"] = _wan_measure(
            _wan_iozone(WAN_RTT, streams), WAN_RTT, streams)
        out["scenarios"][f"wan-80ms-postmark-s{streams}"] = _pm_measure(
            _wan_postmark(streams), streams)
    ratio = (out["scenarios"]["wide-16c-4core"]["aggregate_mb_per_sec"]
             / out["scenarios"]["base-8c-1core"]["aggregate_mb_per_sec"])
    out["throughput_ratio_vs_base"] = round(ratio, 3)
    grid_ratio = (out["scenarios"]["grid-24c-4s"]["aggregate_mb_per_sec"]
                  / out["scenarios"]["grid-24c-1s"]["aggregate_mb_per_sec"])
    out["grid_ratio_4s_vs_1s"] = round(grid_ratio, 3)
    wan_ratio = (out["scenarios"][f"wan-80ms-16m-s{WAN_STREAMS}"]["mb_per_sec"]
                 / out["scenarios"]["wan-lan-16m"]["mb_per_sec"])
    out["wan_ratio_s4_vs_lan"] = round(wan_ratio, 3)
    pm_gain = (
        out["scenarios"][f"wan-80ms-postmark-s{WAN_STREAMS}"]["txn_per_sec"]
        / out["scenarios"]["wan-80ms-postmark-s1"]["txn_per_sec"])
    out["postmark_txn_gain_s4_vs_s1"] = round(pm_gain, 3)
    for label, m in out["scenarios"].items():
        if label.startswith(("wan-", "authz-", "churn-")):
            continue
        extra = (f"striped_r={m['striped_reads']} striped_w={m['striped_writes']}"
                 if "striped_reads" in m else
                 f"full_hs={m['tls_full_handshakes']} "
                 f"resumed={m['tls_resumptions']}")
        print(f"  {label:16s} {m['aggregate_mb_per_sec']:8.1f} MB/s  "
              f"makespan {m['makespan_virtual_seconds']:.5f}s  {extra}")
    for label in ("churn-8c-full", "churn-8c-resumed", "churn-8c-delegated"):
        m = out["scenarios"][label]
        print(f"  {label:20s} {m['sessions_per_vsec']:6.2f} sessions/s  "
              f"hs={m['tls_handshakes']} "
              f"full={m['tls_full_handshakes']} "
              f"resumed={m['tls_resumptions']} "
              f"renewals={m['renewals']} "
              f"authz h/m/s={m['authz_hits']}/{m['authz_misses']}/"
              f"{m['authz_stale']}")
    for label in ("wan-lan-16m", "wan-80ms-16m-s1",
                  f"wan-80ms-16m-s{WAN_STREAMS}"):
        m = out["scenarios"][label]
        print(f"  {label:18s} {m['mb_per_sec']:8.2f} MB/s  "
              f"total {m['virtual_seconds']:.3f}s  streams={m['streams']}")
    for label in ("wan-80ms-postmark-s1",
                  f"wan-80ms-postmark-s{WAN_STREAMS}"):
        m = out["scenarios"][label]
        print(f"  {label:18s} {m['txn_per_sec']:8.1f} txn/s  "
              f"txn phase {m['transaction_seconds']:.3f}s  "
              f"streams={m['streams']}")
    print(f"  throughput ratio 16c/4core vs 8c/1core: {ratio:.2f}x")
    print(f"  grid throughput ratio 4 backends vs 1: {grid_ratio:.2f}x")
    print(f"  wan 80ms throughput vs lan (streams={WAN_STREAMS}): "
          f"{wan_ratio:.2f}x")
    print(f"  wan postmark txn-rate gain s{WAN_STREAMS} vs s1: {pm_gain:.2f}x")
    return out


def check(result: dict) -> int:
    failures = []
    ratio = result["throughput_ratio_vs_base"]
    if ratio < MIN_RATIO:
        failures.append(
            f"multi-core speedup {ratio:.2f}x below the {MIN_RATIO:.1f}x floor"
        )
    grid_ratio = result["grid_ratio_4s_vs_1s"]
    if grid_ratio < MIN_GRID_RATIO:
        failures.append(
            f"4-backend grid speedup {grid_ratio:.2f}x below the "
            f"{MIN_GRID_RATIO:.1f}x floor"
        )
    for servers in (2, 4):
        g = result["scenarios"][f"grid-24c-{servers}s"]
        if g["striped_reads"] <= 0 or g["striped_writes"] <= 0:
            failures.append(
                f"grid-24c-{servers}s recorded no striped I/O "
                f"(reads={g['striped_reads']}, writes={g['striped_writes']})"
            )
    resume = result["scenarios"]["resume-8c-4core"]
    if resume["tls_resumptions"] <= 0:
        failures.append("reconnect-heavy fleet recorded no TLS resumptions")
    if resume["tls_full_handshakes"] != 8:
        failures.append(
            f"expected exactly 8 full handshakes (initial connections), "
            f"got {resume['tls_full_handshakes']}"
        )
    wan_ratio = result["wan_ratio_s4_vs_lan"]
    if wan_ratio < MIN_WAN_RATIO:
        failures.append(
            f"80ms WAN throughput with {WAN_STREAMS} streams is "
            f"{wan_ratio:.2f}x of LAN, below the {MIN_WAN_RATIO:.1f}x floor"
        )
    wan_s4 = result["scenarios"][f"wan-80ms-16m-s{WAN_STREAMS}"]
    if wan_s4["stream_bulk_calls"] <= 0:
        failures.append(
            "multi-stream WAN run recorded no sub-channel bulk calls"
        )
    pm_gain = result["postmark_txn_gain_s4_vs_s1"]
    if pm_gain <= 1.0:
        failures.append(
            f"WAN PostMark txn rate did not improve with {WAN_STREAMS} "
            f"streams (gain {pm_gain:.2f}x)"
        )
    pm_s4 = result["scenarios"][f"wan-80ms-postmark-s{WAN_STREAMS}"]
    if pm_s4["writeback_blocks"] <= 0 or pm_s4["compound_envelopes"] <= 0:
        failures.append(
            f"WAN PostMark run never exercised windowed write-back "
            f"(blocks={pm_s4['writeback_blocks']}, "
            f"envelopes={pm_s4['compound_envelopes']})"
        )
    authz = result["scenarios"]["authz-1e6"]
    if not authz["o1_lookup"]:
        failures.append(
            f"gridmap lookup at {AUTHZ_LARGE} entries exceeded "
            f"{AUTHZ_SLACK:.0f}x the {AUTHZ_SMALL}-entry cost — not O(1)"
        )
    if not authz["lookups_resolved"]:
        failures.append("population gridmap lookups resolved incorrectly")
    full = result["scenarios"]["churn-8c-full"]
    if full["tls_resumptions"] != 0:
        failures.append(
            f"ticket-less churn fleet recorded "
            f"{full['tls_resumptions']} resumptions"
        )
    if full["tls_handshakes"] <= CHURN_CLIENTS:
        failures.append(
            f"ticket-less churn fleet never re-handshook "
            f"(handshakes={full['tls_handshakes']})"
        )
    for label in ("churn-8c-resumed", "churn-8c-delegated"):
        m = result["scenarios"][label]
        if m["tls_full_handshakes"] != CHURN_CLIENTS:
            failures.append(
                f"{label}: expected exactly {CHURN_CLIENTS} full handshakes "
                f"(the initial logins), got {m['tls_full_handshakes']}"
            )
        if m["tls_resumptions"] <= 0:
            failures.append(f"{label} recorded no TLS resumptions")
    deleg = result["scenarios"]["churn-8c-delegated"]
    if deleg["renewals"] <= 0:
        failures.append("delegated churn fleet never renewed a delegation")
    if deleg["delegations"] != CHURN_CLIENTS + deleg["renewals"]:
        failures.append(
            f"delegation accounting off: {deleg['delegations']} != "
            f"{CHURN_CLIENTS} logins + {deleg['renewals']} renewals"
        )
    if deleg["authz_stale"] <= 0:
        failures.append(
            "delegated churn never revalidated a stale authz cache entry "
            "(gridmap epoch invalidation untested)"
        )
    for msg in failures:
        print(f"FAIL: {msg}")
    if not failures:
        print(f"OK: {ratio:.2f}x >= {MIN_RATIO:.1f}x, "
              f"grid {grid_ratio:.2f}x >= {MIN_GRID_RATIO:.1f}x, "
              f"wan {wan_ratio:.2f}x >= {MIN_WAN_RATIO:.1f}x, "
              f"postmark gain {pm_gain:.2f}x, "
              f"{resume['tls_resumptions']} resumptions, "
              f"authz O(1) at {AUTHZ_LARGE} entries, "
              f"churn renewals {deleg['renewals']}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_SCALEOUT.json",
                        help="output path (default: BENCH_SCALEOUT.json)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless the multi-core speedup is >= 3x, "
                             "the 4-backend grid speedup is >= 1.8x, the "
                             "80ms WAN run holds >= 0.5x LAN throughput "
                             "with 4 streams, the WAN PostMark txn rate "
                             "improves, the reconnect fleet resumed "
                             "sessions, the 10^6-entry gridmap lookup "
                             "stays O(1), and the churn fleets resumed / "
                             "renewed as configured")
    args = parser.parse_args(argv)
    print("bench_scaleout (sgfs-aes, fat LAN)")
    result = run_benchmarks()
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if args.check:
        return check(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
