#!/usr/bin/env python3
"""Check that every relative link in the repo's Markdown files resolves.

Walks all tracked ``*.md`` files, extracts inline links and images
(``[text](target)``), skips absolute URLs / mailto / pure-anchor
targets, and verifies each remaining target exists relative to the
linking file (anchors and query strings stripped).  Exits non-zero
listing every dangling link — the CI docs gate.

Usage: python tools/check_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline [text](target) and ![alt](target); stops at the first ')' so
# nested parens in URLs are out of scope (none in this repo).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not SKIP_DIRS.intersection(p.name for p in path.parents):
            yield path


def check_file(md: Path, root: Path) -> list:
    problems = []
    text = md.read_text(encoding="utf-8")
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES) or "://" in target:
                continue
            # `<https://...>` autolinks don't match; bare anchors skipped above.
            plain = target.split("#", 1)[0].split("?", 1)[0]
            if not plain:
                continue
            resolved = (md.parent / plain).resolve()
            if not resolved.exists():
                problems.append((md.relative_to(root), lineno, target))
    return problems


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    root = root.resolve()
    checked = 0
    problems = []
    for md in iter_markdown(root):
        checked += 1
        problems.extend(check_file(md, root))
    if problems:
        for path, lineno, target in problems:
            print(f"{path}:{lineno}: dangling link -> {target}")
        print(f"{len(problems)} dangling link(s) across {checked} Markdown file(s)")
        return 1
    print(f"ok: all relative links resolve across {checked} Markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
