#!/usr/bin/env python3
"""Per-session security customization: the paper's central trade-off.

Runs the same bulk-read workload under every session security
configuration (§6.2.1's menu) and prints the runtime ladder plus the
client proxy's CPU utilization — the data behind the paper's argument
that "an application-tailored security configuration is very important":
sessions moving non-confidential data can skip encryption and keep
integrity, paying ~9 % instead of ~50 %.

Also demonstrates the RPC tracer: per-procedure latency percentiles for
one of the runs.

Run:  python examples/security_performance_tradeoff.py
"""

from repro.harness import RpcTracer, run_iozone
from repro.core import Testbed, setup_sgfs
from repro.workloads import IOzoneReadReread

MB = 1024 * 1024
CONFIGS = [
    ("gfs", "no security (baseline)"),
    ("sgfs-sha", "integrity only: SHA1-HMAC"),
    ("sgfs-rc", "medium: RC4-128 + SHA1-HMAC"),
    ("sgfs-aes", "strong: AES-256-CBC + SHA1-HMAC"),
]


def ladder() -> None:
    print(f"{'session config':36s} {'runtime':>9s} {'vs gfs':>8s} {'proxy CPU':>10s}")
    base = None
    for setup, label in CONFIGS:
        r = run_iozone(setup, rtt=0.0, file_size=4 * MB,
                       setup_kwargs={"cache_bytes": 2 * MB})
        if base is None:
            base = r.total
        overhead = (r.total / base - 1) * 100
        print(f"{label:36s} {r.total:8.3f}s {overhead:+7.1f}% "
              f"{r.cpu_mean('client', 'proxy'):9.1f}%")


def trace_one() -> None:
    print("\nper-procedure latency for one sgfs-aes run (RPC tracer):")
    tb = Testbed.build()
    mount = setup_sgfs(tb, suite="aes-256-cbc-sha1")
    tracer = RpcTracer.install(mount.client)
    wl = IOzoneReadReread(file_size=1 * MB)
    wl.prepare(tb)
    tb.run(wl.run(mount))
    print(tracer.format())


if __name__ == "__main__":
    ladder()
    trace_one()
