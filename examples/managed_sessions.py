#!/usr/bin/env python3
"""Service-managed sessions: DSS + FSS orchestration (paper §3.2, §4.4).

Demonstrates the full management plane:

1. a grid deployment with a CA, a DSS, and FSS services on the client
   and server hosts, all speaking WS-Security-signed SOAP;
2. a user delegates a proxy credential and asks the DSS for a session;
3. the DSS authorizes the user against its per-filesystem ACL database,
   generates a gridmap, and drives both FSSs to stand up the proxies;
4. the user's job mounts the returned loopback port and does I/O;
5. the user *shares* the filesystem with a collaborator via the DSS
   (one ACL entry -> regenerated gridmap on the next session);
6. an unauthorized user's request is refused.

Run:  python examples/managed_sessions.py
"""

from repro.core.setups import CA_DN, FILE_ACCOUNT, JOB_ACCOUNT, SERVER_DN, USER_DN, _kernel_client
from repro.core.topology import NFS_PORT, Testbed
from repro.crypto.drbg import Drbg
from repro.gsi import CertificateAuthority, DistinguishedName, issue_proxy_certificate
from repro.rpc.auth import AuthSys
from repro.services import DataSchedulerService, FileSystemService
from repro.services.dss import seal_credential_for
from repro.services.endpoint import ServiceClient
from repro.services.soap import SoapFault

COLLABORATOR_DN = DistinguishedName.parse("/C=US/O=UFL/OU=HCS/CN=Collaborator")


def main() -> None:
    tb = Testbed.build()
    sim = tb.sim
    rng = Drbg("managed-sessions-example")

    # --- the grid's security fabric -----------------------------------
    ca = CertificateAuthority(CA_DN, rng=rng.fork("ca"), key_bits=1024)
    anchors = [ca.certificate]
    user = ca.issue_identity(USER_DN, rng=rng.fork("user"), key_bits=1024)
    intruder = ca.issue_identity(
        DistinguishedName.parse("/C=US/O=Elsewhere/CN=Mallory"),
        rng=rng.fork("mallory"), key_bits=1024,
    )
    host_id = ca.issue_identity(SERVER_DN, rng=rng.fork("host"), key_bits=1024)
    fss_server_id = ca.issue_identity(
        DistinguishedName.parse("/C=US/O=UFL/CN=fss-server"), rng=rng.fork("f1"), key_bits=1024)
    fss_client_id = ca.issue_identity(
        DistinguishedName.parse("/C=US/O=UFL/CN=fss-client"), rng=rng.fork("f2"), key_bits=1024)
    dss_id = ca.issue_identity(
        DistinguishedName.parse("/C=US/O=UFL/CN=dss"), rng=rng.fork("f3"), key_bits=1024)

    # --- services ------------------------------------------------------
    fss_server = FileSystemService(
        sim, tb.server, 5000, fss_server_id, anchors,
        fs=tb.fs, accounts=tb.server_accounts, nfs_port=NFS_PORT,
        host_credential=host_id,
    )
    fss_server.start()
    fss_client = FileSystemService(sim, tb.client, 5001, fss_client_id, anchors)
    fss_client.start()
    dss = DataSchedulerService(
        sim, tb.server, 5002, dss_id, anchors,
        client_fss={"client": ("client", 5001, fss_client_id.certificate)},
    )
    dss.start()
    dss.register_filesystem(
        "/GFS/ming", "server", 5000, acl={str(USER_DN): FILE_ACCOUNT.name}
    )

    # --- the user's session --------------------------------------------
    proxy_cred = issue_proxy_certificate(user, now=sim.now, rng=rng.fork("px"), key_bits=1024)
    me = ServiceClient(sim, tb.client, proxy_cred, anchors, rng=rng.fork("me"))
    blob = seal_credential_for(proxy_cred, fss_client_id.certificate, rng.fork("seal"))

    def scenario():
        reply = yield from me.call(
            "server", 5002, "CreateSession",
            {"filesystem": "/GFS/ming", "client_host": "client",
             "suite": "rc4-128-sha1", "credential": blob},
        )
        print(f"session {reply['session_id']} at {reply['client_host']}:{reply['client_port']}")
        cl = yield from _kernel_client(
            tb, "client", int(reply["client_port"]),
            AuthSys(uid=JOB_ACCOUNT.uid, gid=JOB_ACCOUNT.gid), None,
        )
        yield from cl.write_file("/results.dat", b"simulation output " * 100)
        print("wrote /results.dat through the managed session")

        # share with a collaborator: one DSS call (paper: one gridmap line)
        yield from me.call(
            "server", 5002, "GrantAccess",
            {"filesystem": "/GFS/ming", "dn": str(COLLABORATOR_DN),
             "account": FILE_ACCOUNT.name},
        )
        print(f"granted {COLLABORATOR_DN} access; next session's gridmap includes them")
        print("generated gridmap now:")
        print("  " + dss.gridmap_for("/GFS/ming").dump().replace("\n", "\n  "))

        # an unauthorized identity is refused
        mallory_proxy = issue_proxy_certificate(
            intruder, now=sim.now, rng=rng.fork("mpx"), key_bits=1024)
        mallory = ServiceClient(sim, tb.client, mallory_proxy, anchors, rng=rng.fork("m"))
        mblob = seal_credential_for(
            mallory_proxy, fss_client_id.certificate, rng.fork("ms"))
        try:
            yield from mallory.call(
                "server", 5002, "CreateSession",
                {"filesystem": "/GFS/ming", "client_host": "client",
                 "credential": mblob},
            )
            raise AssertionError("unauthorized session was created!")
        except SoapFault as fault:
            print(f"Mallory refused, as expected: {fault}")

        yield from me.call(
            "server", 5002, "DestroySession", {"session_id": reply["session_id"]}
        )
        print("session destroyed (dirty data written back by the client FSS)")

    tb.run(scenario())
    print(f"total virtual time: {sim.now:.3f} s")


if __name__ == "__main__":
    main()
