#!/usr/bin/env python3
"""Quickstart: mount a secure grid file system and use it.

Builds the paper's testbed (client / NIST-Net router / file server) on
the virtual clock, establishes an SGFS session secured with
AES-256-CBC + SHA1-HMAC over GSI certificates, and performs ordinary
file operations through the unmodified NFS client interface.

Run:  python examples/quickstart.py
"""

from repro.core import Testbed, setup_sgfs


def main() -> None:
    # A LAN testbed: ~0.3 ms RTT, no emulated WAN delay.
    tb = Testbed.build(rtt=0.0)
    mount = setup_sgfs(tb, suite="aes-256-cbc-sha1")
    print(f"mounted {mount.label!r}; peer identity authenticated via GSI certificates")

    def workload():
        cl = mount.client
        yield from cl.mkdir("/project")
        yield from cl.write_file("/project/notes.txt", b"hello, secure grid\n" * 50)
        data = yield from cl.read_file("/project/notes.txt")
        assert data == b"hello, secure grid\n" * 50
        attr = yield from cl.stat("/project/notes.txt")
        entries = yield from cl.readdir("/project")
        yield from cl.rename("/project/notes.txt", "/project/notes.old")
        yield from cl.symlink("/project/latest", "notes.old")
        target = yield from cl.readlink("/project/latest")
        return attr.size, [e.name for e in entries], target

    size, names, target = tb.run(workload())
    wb_seconds, blocks, nbytes = tb.run(mount.finish())

    print(f"file size: {size} bytes; directory: {names}; symlink -> {target}")
    print(f"virtual time elapsed: {tb.sim.now:.4f} s")
    print(f"RPCs issued by the kernel client: {mount.client.rpc.calls_sent}")
    print(f"server proxy authorized {mount.server_proxy.stats.granted} calls")
    print(f"teardown write-back: {blocks} blocks / {nbytes} bytes in {wb_seconds:.3f} s")


if __name__ == "__main__":
    main()
