#!/usr/bin/env python3
"""Security properties, demonstrated end to end.

1. **Privacy**: a passive observer on the WAN link sees only ciphertext
   of the file data crossing an sgfs-aes session (with the bit-exact
   AES-256-CBC implementation, not the fast benchmark transform).
2. **Authentication**: a client presenting a certificate from an
   untrusted CA cannot establish a session.
3. **Authorization**: an authenticated user missing from the session
   gridmap is denied; a per-file grid ACL overrides UNIX bits.
4. **At-rest protection** (§7 future work, implemented): data sealed by
   the cryptofs extension is unreadable at the server and tampering is
   detected on read-back.

Run:  python examples/security_demo.py
"""

from repro.core import Testbed, setup_sgfs
from repro.core.setups import USER_DN
from repro.crypto.drbg import Drbg
from repro.gsi import CertificateAuthority, DistinguishedName
from repro.proxy.acl import AclEntry
from repro.proxy.cryptofs import AtRestIntegrityError, BlockCryptor
from repro.tls import HandshakeError, SecurityConfig, client_handshake
from repro.vfs.fs import Credentials

SECRET = b"TOP-SECRET seismic coordinates: 29.6N 82.3W" * 16


def demo_privacy() -> None:
    tb = Testbed.build()
    mount = setup_sgfs(tb, suite="aes-256-cbc-sha1", fast_ciphers=False)

    # Wiretap: record every byte crossing the client->router link.
    captured = bytearray()
    original_deliver = tb.net.deliver

    def wiretap(src, dst, nbytes, on_arrival):
        original_deliver(src, dst, nbytes, on_arrival)

    # The payload bytes live in the socket layer; capture there instead.
    client_proxy = mount.client_proxy
    upstream = client_proxy._upstream
    original_send = upstream.sock.send

    def sniffing_send(data):
        captured.extend(data)
        original_send(data)

    upstream.sock.send = sniffing_send

    def job():
        yield from mount.client.write_file("/secrets.txt", SECRET)

    tb.run(job())
    tb.run(mount.finish())
    assert len(captured) > len(SECRET), "nothing captured on the wire"
    leaked = SECRET[:24] in bytes(captured)
    print(f"privacy: wire captured {len(captured)} bytes; "
          f"plaintext visible on the wire: {leaked}")
    assert not leaked, "plaintext leaked through the secure channel!"


def demo_authentication() -> None:
    tb = Testbed.build()
    mount = setup_sgfs(tb, suite="aes-256-cbc-sha1")
    rogue_ca = CertificateAuthority(
        DistinguishedName.parse("/O=RogueCA/CN=Not Trusted"),
        rng=Drbg("rogue"), key_bits=768,
    )
    rogue_user = rogue_ca.issue_identity(
        DistinguishedName.parse("/O=Rogue/CN=Impostor"), key_bits=768
    )
    # The impostor trusts the real CA (to accept the server) but presents
    # a certificate the server's trust anchors cannot validate.
    real_server_cfg = mount.extras["server_security"]
    cfg = SecurityConfig.for_session(
        rogue_user,
        [rogue_ca.certificate, *real_server_cfg.trust_anchors],
        "aes-256-cbc-sha1",
        rng=Drbg("rogue-tls"),
    )

    def attempt():
        from repro.core.topology import SERVER_PROXY_PORT

        sock = yield from tb.client.connect("server", SERVER_PROXY_PORT)
        try:
            yield from client_handshake(tb.sim, sock, cfg)
        except Exception as exc:
            return f"refused ({type(exc).__name__})"
        return "ACCEPTED (bad!)"

    outcome = tb.run(attempt())
    print(f"authentication: impostor with untrusted CA -> {outcome}")
    assert "refused" in outcome


def demo_authorization() -> None:
    tb = Testbed.build()
    mount = setup_sgfs(tb)

    def job():
        yield from mount.client.write_file("/shared.txt", b"readable")
        yield from mount.client.write_file("/private.txt", b"mine only")

    tb.run(job())
    # Fine-grained ACL: deny the (otherwise authorized) session user on
    # one file — the server proxy answers ACCESS from the grid ACL.
    store = mount.server_proxy.acls
    root = tb.fs.root.fileid
    store.set_acl(root, "private.txt", [AclEntry(str(USER_DN), 0, deny=True)])
    node = tb.fs.resolve("/private.txt", Credentials(0, 0))
    bits = store.evaluate(node.fileid, USER_DN)
    shared = tb.fs.resolve("/shared.txt", Credentials(0, 0))
    fallback = store.evaluate(shared.fileid, USER_DN)
    print(f"authorization: grid ACL bits for /private.txt = {bits} (denied), "
          f"/shared.txt -> {'UNIX fallback' if fallback is None else fallback}")
    assert bits == 0 and fallback is None


def demo_at_rest() -> None:
    cryptor = BlockCryptor(session_key=Drbg("session").randbytes(32))
    stored = cryptor.seal(fileid=7, block=0, plaintext=SECRET[:4096])
    assert SECRET[:24] not in stored, "at-rest ciphertext leaks plaintext"
    tampered = bytes([stored[0] ^ 1]) + stored[1:]
    try:
        cryptor.open(7, 0, tampered)
        raise AssertionError("tampering not detected")
    except AtRestIntegrityError:
        pass
    recovered = cryptor.open(7, 0, stored)
    assert recovered == SECRET[:4096]
    print("at-rest: server stores ciphertext; tampering detected; "
          "round-trip verified")


if __name__ == "__main__":
    demo_privacy()
    demo_authentication()
    demo_authorization()
    demo_at_rest()
    print("all security demonstrations passed")
