#!/usr/bin/env python3
"""Wide-area data access: disk caching hides WAN latency (paper §6.2.2).

Runs a PostMark-style small-file workload against native NFSv3 and
against SGFS with aggressive disk caching, at emulated round-trip times
from LAN to 80 ms, and prints the Figure-8-style series.  SGFS's curve
stays nearly flat while native NFS degrades linearly with RTT.

Run:  python examples/wide_area_session.py
"""

from repro.harness import run_postmark
from repro.workloads.postmark import PostMarkConfig

#: A reduced PostMark so the example runs in seconds.
CONFIG = PostMarkConfig(directories=20, files=100, transactions=200)
RTTS_MS = [0, 5, 10, 20, 40, 80]


def main() -> None:
    print(f"{'RTT':>6}  {'nfs-v3':>10}  {'sgfs':>10}  {'speedup':>8}")
    for rtt_ms in RTTS_MS:
        rtt = rtt_ms / 1000.0
        nfs = run_postmark("nfs-v3", rtt=rtt, config=CONFIG)
        sgfs = run_postmark(
            "sgfs", rtt=rtt, config=CONFIG, setup_kwargs={"disk_cache": rtt_ms > 0}
        )
        speedup = nfs.total / sgfs.total
        print(
            f"{rtt_ms:>4}ms  {nfs.total:>9.2f}s  {sgfs.total:>9.2f}s  {speedup:>7.2f}x"
        )
    print("\nsgfs columns include GSI authentication and AES-256+SHA1 protection;")
    print("the flat curve is the paper's Figure 8 story: the proxy disk cache")
    print("absorbs reads, write-back absorbs writes, and only cold metadata")
    print("crosses the WAN.")


if __name__ == "__main__":
    main()
